//! Estimator validation probe for user-defined graphs.
//!
//! A `graph.json` spec that passes [`real_dataflow::GraphSpec::build`] is
//! structurally sound, but "well-formed" is only useful if the graph is
//! also *searchable*: the MCMC plan search prices every candidate through
//! the estimator, and a call whose profiled duration assembles to zero,
//! NaN, or infinity silently corrupts the §5.2 cost landscape. [`probe`]
//! prices every call of an estimator's graph under a canonical full-cluster
//! assignment and rejects non-finite or non-positive durations up front, so
//! `real run --graph` fails with a named call instead of a degenerate
//! search.

use crate::Estimator;
use real_cluster::DeviceMesh;
use real_dataflow::{CallAssignment, ExecutionPlan, ModelFunctionCallDef};
use real_model::ParallelStrategy;
use std::fmt;

/// Errors from [`probe`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeError {
    /// No parallel strategy fits the full-cluster mesh for this call: every
    /// (dp, tp, pp) factorization violates the model's TP bound, the layer
    /// count, or the call's global batch.
    NoFeasibleAssignment(String),
    /// The estimator priced a call at a NaN or infinite duration.
    NonFiniteDuration {
        /// Offending call.
        call: String,
        /// The assembled duration.
        secs: f64,
    },
    /// The estimator priced a call at zero or negative seconds.
    NonPositiveDuration {
        /// Offending call.
        call: String,
        /// The assembled duration.
        secs: f64,
    },
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::NoFeasibleAssignment(call) => write!(
                f,
                "call `{call}`: no parallel strategy fits the full cluster \
                 (check batch size, KV heads, and layer count)"
            ),
            ProbeError::NonFiniteDuration { call, secs } => {
                write!(
                    f,
                    "call `{call}`: estimator priced a non-finite duration ({secs})"
                )
            }
            ProbeError::NonPositiveDuration { call, secs } => {
                write!(f, "call `{call}`: estimator priced {secs}s, expected > 0")
            }
        }
    }
}

impl std::error::Error for ProbeError {}

/// One probed call: its canonical assignment and estimated duration.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbedCall {
    /// Call name.
    pub call: String,
    /// The canonical assignment the call was priced under.
    pub assignment: CallAssignment,
    /// Estimated duration under that assignment, seconds.
    pub secs: f64,
}

/// The result of a successful [`probe`]: evidence the graph is priceable.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReport {
    /// Per-call canonical durations, in call order.
    pub calls: Vec<ProbedCall>,
    /// Algorithm-1 steady-state iteration estimate of the canonical plan.
    pub time_cost: f64,
    /// Peak memory of the canonical plan, bytes.
    pub max_mem: u64,
    /// Whether the canonical plan fits device memory. `false` is *not* an
    /// error — the MCMC search explores other placements — but callers may
    /// warn.
    pub mem_ok: bool,
}

/// Picks a canonical strategy filling `mesh` for `call`: the largest
/// node-local TP the model supports, the smallest PP that makes the
/// data-parallel degree fit the call's global batch, and up to 4
/// micro-batches. Returns `None` when no factorization satisfies the
/// [`ExecutionPlan::new`] constraints.
///
/// # Examples
///
/// ```
/// use real_cluster::{ClusterSpec, DeviceMesh};
/// use real_dataflow::{algo, CallId};
/// use real_estimator::probe::fit_assignment;
/// use real_model::ModelSpec;
///
/// let cluster = ClusterSpec::h100(1);
/// let actor = ModelSpec::llama3_7b();
/// let graph = algo::dpo(&actor, &algo::RlhfConfig::instruct_gpt(64));
/// let mesh = DeviceMesh::full(&cluster);
/// let a = fit_assignment(&mesh, graph.call(CallId(0))).unwrap();
/// assert_eq!(a.strategy.world_size(), mesh.n_gpus());
/// ```
pub fn fit_assignment(mesh: &DeviceMesh, call: &ModelFunctionCallDef) -> Option<CallAssignment> {
    let n = mesh.n_gpus();
    let max_tp = u32::try_from(call.model.max_tp()).unwrap_or(u32::MAX);
    let max_pp = u32::try_from(call.model.n_layers).unwrap_or(u32::MAX);
    let batch = call.call_type.batch();
    let mut tp = mesh.gpu_width().min(max_tp).min(n);
    while !tp.is_power_of_two() {
        tp -= 1; // round down to a power of two dividing the mesh
    }
    while tp >= 1 {
        if n.is_multiple_of(tp) {
            let rest = n / tp;
            let mut pp = 1;
            while pp <= rest.min(max_pp) {
                let dp = rest / pp;
                if u64::from(dp) <= batch {
                    let micro = u32::try_from(batch / u64::from(dp))
                        .unwrap_or(4)
                        .clamp(1, 4);
                    let strategy = ParallelStrategy::new(dp, tp, pp, micro).ok()?;
                    return CallAssignment::new(*mesh, strategy).ok();
                }
                pp *= 2;
            }
        }
        tp /= 2;
    }
    None
}

/// Builds the canonical plan of the estimator's graph confined to `mesh`:
/// every call gets its [`fit_assignment`] on that mesh. Returns `None` when
/// any call fits no strategy there. This is the admission-time feasibility
/// probe `real-serve` warm-starts candidate pricing from — it answers "does
/// this tenant fit this mesh at all" without running a search.
///
/// # Examples
///
/// ```
/// use real_cluster::{ClusterSpec, DeviceMesh};
/// use real_dataflow::algo;
/// use real_estimator::{probe::fit_plan, Estimator};
/// use real_model::ModelSpec;
/// use real_profiler::{ProfileConfig, Profiler};
///
/// let cluster = ClusterSpec::h100(2);
/// let actor = ModelSpec::llama3_7b();
/// let graph = algo::dpo(&actor, &algo::RlhfConfig::instruct_gpt(64));
/// let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 1);
/// let profiles = vec![profiler.profile(&actor)];
/// let est = Estimator::new(cluster.clone(), graph, profiles).unwrap();
/// let node1 = DeviceMesh::whole_nodes(&cluster, 1, 1).unwrap();
/// let plan = fit_plan(&est, &node1).unwrap();
/// let cost = est.allocation_cost(&plan, &node1);
/// assert!(cost.contained && cost.step_secs > 0.0);
/// ```
pub fn fit_plan(est: &Estimator, mesh: &DeviceMesh) -> Option<ExecutionPlan> {
    let graph = est.graph();
    let assignments: Option<Vec<CallAssignment>> = graph
        .iter()
        .map(|(_, def)| fit_assignment(mesh, def))
        .collect();
    ExecutionPlan::new(graph, est.cluster(), assignments?).ok()
}

/// Prices every call of the estimator's graph under a canonical
/// full-cluster plan and validates the durations are finite and positive —
/// the contract the MCMC search and the runtime master rely on.
///
/// # Errors
///
/// Returns the first [`ProbeError`] in call order.
///
/// # Examples
///
/// ```
/// use real_cluster::ClusterSpec;
/// use real_dataflow::algo;
/// use real_estimator::{probe::probe, Estimator};
/// use real_model::ModelSpec;
/// use real_profiler::{ProfileConfig, Profiler};
///
/// let cluster = ClusterSpec::h100(1);
/// let actor = ModelSpec::llama3_7b();
/// let graph = algo::dpo(&actor, &algo::RlhfConfig::instruct_gpt(64));
/// let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 1);
/// let profiles = vec![profiler.profile(&actor)];
/// let est = Estimator::new(cluster, graph, profiles).unwrap();
/// let report = probe(&est).unwrap();
/// assert!(report.calls.iter().all(|c| c.secs > 0.0));
/// assert!(report.time_cost > 0.0);
/// ```
pub fn probe(est: &Estimator) -> Result<ProbeReport, ProbeError> {
    let mesh = DeviceMesh::full(est.cluster());
    let graph = est.graph();
    let mut assignments = Vec::with_capacity(graph.n_calls());
    let mut calls = Vec::with_capacity(graph.n_calls());
    for (id, def) in graph.iter() {
        let a = fit_assignment(&mesh, def)
            .ok_or_else(|| ProbeError::NoFeasibleAssignment(def.call_name.clone()))?;
        let secs = est.call_duration(id, &a);
        if !secs.is_finite() {
            return Err(ProbeError::NonFiniteDuration {
                call: def.call_name.clone(),
                secs,
            });
        }
        if secs <= 0.0 {
            return Err(ProbeError::NonPositiveDuration {
                call: def.call_name.clone(),
                secs,
            });
        }
        calls.push(ProbedCall {
            call: def.call_name.clone(),
            assignment: a,
            secs,
        });
        assignments.push(a);
    }
    let plan = ExecutionPlan::new(graph, est.cluster(), assignments)
        .map_err(|e| ProbeError::NoFeasibleAssignment(e.to_string()))?;
    Ok(ProbeReport {
        time_cost: est.time_cost(&plan),
        max_mem: est.max_mem(&plan),
        mem_ok: est.mem_ok(&plan),
        calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::ClusterSpec;
    use real_dataflow::{algo, GraphSpec};
    use real_model::ModelSpec;
    use real_profiler::{ProfileConfig, Profiler};

    fn estimator_for(graph: real_dataflow::DataflowGraph) -> Estimator {
        let cluster = ClusterSpec::h100(1);
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 1);
        let mut profiles = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for c in graph.calls() {
            if seen.insert(c.model.name.clone()) {
                profiles.push(profiler.profile(&c.model));
            }
        }
        Estimator::new(cluster, graph, profiles).unwrap()
    }

    #[test]
    fn probe_accepts_every_builtin_constructor() {
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        let cfg = algo::RlhfConfig::instruct_gpt(64);
        for graph in [
            algo::ppo(&actor, &critic, &cfg),
            algo::dpo(&actor, &cfg),
            algo::grpo(&actor, &critic, &cfg),
            algo::remax(&actor, &critic, &cfg),
        ] {
            let est = estimator_for(graph);
            let report = probe(&est).unwrap();
            assert!(report.time_cost > 0.0);
            assert!(report.max_mem > 0);
            assert!(report
                .calls
                .iter()
                .all(|c| c.secs.is_finite() && c.secs > 0.0));
        }
    }

    #[test]
    fn probe_accepts_dsl_loaded_graph() {
        let json = r#"{
            "models": [{"role": "m", "arch": "7b"}],
            "data": ["prompts"],
            "calls": [
                {"name": "m_gen", "model": "m", "kind": "gen",
                 "batch": 32, "prompt_len": 128, "gen_len": 128,
                 "inputs": ["prompts"], "outputs": ["seq"]},
                {"name": "m_train", "model": "m", "kind": "train",
                 "batch": 32, "seq_len": 256, "inputs": ["seq"]}
            ]
        }"#;
        let built = serde_json::from_str::<GraphSpec>(json)
            .unwrap()
            .build()
            .unwrap();
        let report = probe(&estimator_for(built.graph)).unwrap();
        assert_eq!(report.calls.len(), 2);
    }

    #[test]
    fn probe_rejects_batch_smaller_than_any_dp() {
        // A batch of 1 with max_tp 8 on 8 GPUs still fits (dp=1, tp=8), so
        // force infeasibility with a model allowing only tp=1 and pp=1
        // (single layer, single KV head) — 8 GPUs then demand dp=8 > batch.
        let mut tiny = ModelSpec::llama3_7b();
        tiny.name = "tiny".to_string();
        tiny.n_kv_heads = 1;
        tiny.n_heads = 1;
        tiny.n_layers = 1;
        let graph =
            real_dataflow::DataflowGraph::new(vec![real_dataflow::ModelFunctionCallDef::new(
                "t_inf",
                "t",
                tiny,
                real_dataflow::CallType::Inference {
                    batch: 1,
                    seq_len: 64,
                },
                &[],
                &[],
            )])
            .unwrap();
        let est = estimator_for(graph);
        assert!(matches!(
            probe(&est),
            Err(ProbeError::NoFeasibleAssignment(c)) if c == "t_inf"
        ));
    }

    #[test]
    fn fit_plan_confines_every_call_to_the_mesh() {
        let actor = ModelSpec::llama3_7b();
        let cluster = ClusterSpec::h100(2);
        let graph = algo::dpo(&actor, &algo::RlhfConfig::instruct_gpt(64));
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 1);
        let profiles = vec![profiler.profile(&actor)];
        let est = Estimator::new(cluster.clone(), graph, profiles).unwrap();
        for node in 0..2 {
            let mesh = DeviceMesh::whole_nodes(&cluster, node, 1).unwrap();
            let plan = fit_plan(&est, &mesh).unwrap();
            let cost = est.allocation_cost(&plan, &mesh);
            assert!(cost.contained, "plan escaped node {node}");
            assert!(cost.step_secs > 0.0);
        }
    }

    #[test]
    fn fit_assignment_respects_model_bounds() {
        let cluster = ClusterSpec::h100(2);
        let mesh = DeviceMesh::full(&cluster);
        let graph = algo::ppo(
            &ModelSpec::llama3_7b(),
            &ModelSpec::llama3_7b().critic(),
            &algo::RlhfConfig::instruct_gpt(64),
        );
        for c in graph.calls() {
            let a = fit_assignment(&mesh, c).unwrap();
            assert_eq!(a.strategy.world_size(), mesh.n_gpus());
            assert!(u64::from(a.strategy.tp()) <= c.model.max_tp());
            assert!(u64::from(a.strategy.dp()) <= c.call_type.batch());
        }
    }
}
