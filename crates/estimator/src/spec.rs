//! Speculative-decoding pricing glue for the estimator.
//!
//! An [`ExecutionPlan`](real_dataflow::ExecutionPlan) may attach a
//! [`SpecChoice`] to a generation call: a draft model, a speculation length,
//! an acceptance curve, and the draft's own `(mesh, strategy)` placement.
//! This module turns that choice into the three quantities the estimator
//! needs:
//!
//! - **duration** — [`spec_generate_duration`] rescales only the *decode*
//!   phase of the profiled generation price by the spec-vs-plain per-token
//!   ratio from [`real_model::specdec`] (the single source of truth all
//!   three layers share), and adds the draft's analytic prefill. The
//!   prefill phase is untouched: drafting only replaces decode rounds.
//! - **devices** — the draft's mesh joins the call's occupied meshes, so
//!   Algorithm 1 serializes anything colocated with the draft while the
//!   call runs.
//! - **memory** — [`draft_active_bytes`] prices the draft's resident
//!   weights plus its KV cache on the draft mesh; it sums with whatever
//!   else lives there (the draft stays loaded while speculation is on).
//!
//! The draft model is deliberately priced *analytically* (via
//! [`CostModel`]) rather than from a [`ProfileDb`](real_profiler::ProfileDb)
//! — draft architectures are not part of the dataflow graph, so the
//! profiler never times them; the estimator-vs-runtime agreement is
//! preserved because the runtime master prices drafts with the same
//! [`CostModel`].

use crate::{assemble, Estimator};
use real_dataflow::{CallAssignment, CallId, CallType, SpecChoice};
use real_model::specdec::{self, DecodeShape};
use real_model::{CostModel, MemoryModel};

/// The decode working shape of a generation call under an assignment: the
/// per-micro-batch sequence count and the average context length, decoded
/// through CUDA graphs, with the TP all-reduce locality read off the
/// assignment. Returns `None` for non-generation calls (speculation only
/// applies to generation).
pub fn decode_shape(call_type: &CallType, a: &CallAssignment) -> Option<DecodeShape> {
    let CallType::Generate {
        batch,
        prompt_len,
        gen_len,
    } = *call_type
    else {
        return None;
    };
    let mbs = u64::from(a.strategy.micro_batches());
    let batch_r = batch.div_ceil(u64::from(a.strategy.dp()));
    Some(DecodeShape {
        batch: batch_r.div_ceil(mbs).max(1),
        past_len: prompt_len + gen_len / 2,
        cuda_graph: true,
        within_node: a.tp_within_node(),
    })
}

/// The spec-vs-plain per-token decode ratio in `(0, 1]` for a generation
/// call. `1.0` means speculation does not pay (the runtime falls back to
/// plain decode, so a plan can never get slower); values below `1.0` scale
/// the decode phase of the profiled generation price.
pub fn speedup_ratio(
    est: &Estimator,
    call: CallId,
    a: &CallAssignment,
    choice: &SpecChoice,
) -> f64 {
    let def = est.graph().call(call);
    let Some(shape) = decode_shape(&def.call_type, a) else {
        return 1.0;
    };
    let target = CostModel::new(est.cluster().clone(), def.model.clone());
    let draft = CostModel::new(est.cluster().clone(), choice.config.draft_model.clone());
    let plain = specdec::plain_step_time(&target, &shape, a.strategy.tp());
    if plain <= 0.0 {
        return 1.0;
    }
    let spec = specdec::spec_decode_step_time(
        &target,
        &draft,
        &choice.config,
        &shape,
        a.strategy.tp(),
        choice.assignment.strategy.tp(),
    );
    spec / plain
}

/// Whether speculation actually beats plain decode for this call — the
/// profitability predicate the search's greedy polish and the runtime's
/// fallback both consult, so the three layers agree on the decision.
pub fn profitable(est: &Estimator, call: CallId, a: &CallAssignment, choice: &SpecChoice) -> bool {
    speedup_ratio(est, call, a, choice) < 1.0
}

/// Analytic prefill of the prompt through the draft model on its own
/// placement — the draft must build its KV cache before it can draft.
pub fn draft_prefill_secs(est: &Estimator, call: CallId, choice: &SpecChoice) -> f64 {
    let def = est.graph().call(call);
    let CallType::Generate {
        batch, prompt_len, ..
    } = def.call_type
    else {
        return 0.0;
    };
    let a = &choice.assignment;
    let s = &a.strategy;
    let m = CostModel::new(est.cluster().clone(), choice.config.draft_model.clone());
    let mbs = u64::from(s.micro_batches());
    let pp = u64::from(s.pp());
    let batch_mb = batch.div_ceil(u64::from(s.dp())).div_ceil(mbs).max(1);
    let tokens_mb = batch_mb * prompt_len;
    let stage_layers = s.max_stage_layers(choice.config.draft_model.n_layers) as f64;
    let stage = stage_layers
        * (m.layer_fwd_time(tokens_mb, prompt_len / 2, s.tp(), false)
            + 2.0 * m.tp_allreduce_time(tokens_mb, s.tp(), a.tp_within_node()));
    (mbs + pp - 1) as f64 * stage
}

/// Estimated duration of a speculative generation call: the profiled
/// prefill unchanged, the profiled decode scaled by [`speedup_ratio`], plus
/// the draft's own prefill. Health scaling is applied by the caller
/// ([`Estimator::spec_call_duration`]). Non-generation calls price exactly
/// as their plain duration.
pub fn spec_generate_duration(
    est: &Estimator,
    call: CallId,
    a: &CallAssignment,
    choice: &SpecChoice,
) -> f64 {
    let def = est.graph().call(call);
    let CallType::Generate {
        batch,
        prompt_len,
        gen_len,
    } = def.call_type
    else {
        return assemble::call_duration(def, a, est.profile_for(call), est.comm());
    };
    let (prefill, decode) = assemble::generate_split_duration(
        def,
        a,
        est.profile_for(call),
        est.comm(),
        batch,
        prompt_len,
        gen_len,
    );
    prefill + decode * speedup_ratio(est, call, a, choice) + draft_prefill_secs(est, call, choice)
}

/// Bytes the draft pins on every GPU of its mesh while speculation is
/// enabled: its frozen BF16 weights plus its KV cache for the call's full
/// sequence budget. Charged like static memory (it sums with colocated
/// contributions — the draft stays resident across the whole call).
pub fn draft_active_bytes(call_type: &CallType, choice: &SpecChoice) -> u64 {
    let CallType::Generate {
        batch,
        prompt_len,
        gen_len,
    } = *call_type
    else {
        return 0;
    };
    let s = &choice.assignment.strategy;
    let mm = MemoryModel::new(choice.config.draft_model.clone());
    let batch_r = batch.div_ceil(u64::from(s.dp()));
    mm.static_frozen_bytes(s) + mm.kv_cache_bytes(s, batch_r, prompt_len + gen_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::{ClusterSpec, DeviceMesh};
    use real_dataflow::{algo, DataflowGraph, ExecutionPlan};
    use real_model::specdec::AcceptanceCurve;
    use real_model::{ModelSpec, ParallelStrategy, SpecDecodeConfig};
    use real_profiler::{ProfileConfig, Profiler};

    fn setup() -> (ClusterSpec, DataflowGraph, Estimator) {
        let cluster = ClusterSpec::h100(2);
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        let graph = algo::ppo(&actor, &critic, &algo::RlhfConfig::instruct_gpt(64));
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 7);
        let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
        let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
        (cluster, graph, est)
    }

    fn gen_call(graph: &DataflowGraph) -> CallId {
        graph.find("actor_gen").unwrap()
    }

    fn base_plan(cluster: &ClusterSpec, graph: &DataflowGraph) -> ExecutionPlan {
        let a = CallAssignment::new(
            DeviceMesh::full(cluster),
            ParallelStrategy::new(2, 8, 1, 1).unwrap(),
        )
        .unwrap();
        ExecutionPlan::new(graph, cluster, vec![a; graph.n_calls()]).unwrap()
    }

    fn choice(cluster: &ClusterSpec, alpha: f64, k: u32) -> SpecChoice {
        SpecChoice {
            config: SpecDecodeConfig {
                draft_model: ModelSpec::llama3_1b(),
                speculation_len: k,
                acceptance_curve: AcceptanceCurve::Constant(alpha),
            },
            assignment: CallAssignment::new(
                DeviceMesh::sub_node(cluster, 0, 0, 2).unwrap(),
                ParallelStrategy::new(1, 2, 1, 1).unwrap(),
            )
            .unwrap(),
        }
    }

    #[test]
    fn high_acceptance_cuts_generation_duration() {
        let (cluster, graph, est) = setup();
        let plan = base_plan(&cluster, &graph);
        let call = gen_call(&graph);
        let a = plan.assignment(call);
        let plain = est.call_duration(call, a);
        let spec = spec_generate_duration(&est, call, a, &choice(&cluster, 0.85, 4));
        assert!(
            spec < 0.8 * plain,
            "α=0.85 k=4 should cut generation well below plain: {spec} vs {plain}"
        );
    }

    #[test]
    fn zero_acceptance_never_beats_plain_and_stays_close() {
        let (cluster, graph, est) = setup();
        let plan = base_plan(&cluster, &graph);
        let call = gen_call(&graph);
        let a = plan.assignment(call);
        let c = choice(&cluster, 0.0, 4);
        assert!((speedup_ratio(&est, call, a, &c) - 1.0).abs() < 1e-12);
        assert!(!profitable(&est, call, a, &c));
        // Fallback pays only the draft prefill on top of plain.
        let plain = est.call_duration(call, a);
        let spec = spec_generate_duration(&est, call, a, &c);
        let prefill = draft_prefill_secs(&est, call, &c);
        assert!((spec - (plain + prefill)).abs() < 1e-9 * plain.max(1.0));
    }

    #[test]
    fn draft_memory_is_positive_and_small() {
        let (cluster, graph, _) = setup();
        let call_type = &graph.call(gen_call(&graph)).call_type;
        let bytes = draft_active_bytes(call_type, &choice(&cluster, 0.8, 4));
        // 1B draft on 2 GPUs: weights ~1.2 GiB/GPU + KV cache; far below an
        // 80 GiB device but clearly nonzero.
        assert!(bytes > 500 << 20, "bytes {bytes}");
        assert!(bytes < 20 << 30, "bytes {bytes}");
    }

    #[test]
    fn non_generation_calls_price_plain() {
        let (cluster, graph, est) = setup();
        let plan = base_plan(&cluster, &graph);
        let train = graph.find("actor_train").unwrap();
        let a = plan.assignment(train);
        let c = choice(&cluster, 0.9, 4);
        assert_eq!(
            spec_generate_duration(&est, train, a, &c),
            est.call_duration(train, a)
        );
        assert_eq!(draft_active_bytes(&graph.call(train).call_type, &c), 0);
    }
}
