//! Algorithm 1 (Appendix C): simulate the augmented graph's schedule with
//! the constraint that nodes on overlapping device meshes cannot execute
//! simultaneously, and return the makespan.
//!
//! [`makespan_instrumented`] additionally counts the algorithm's queue
//! events into a [`real_obs::MetricsRegistry`] — per-kind busy seconds,
//! ready-queue pops, and device-serialization stalls — so estimator-vs-
//! runtime divergence (Fig. 12) can be diagnosed per category instead of
//! only at the end-to-end number.

use crate::augment::{AugNode, NodeKind};
use real_obs::MetricsRegistry;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry ordered by minimum ready time (min-heap via reversed Ord).
#[derive(Debug, PartialEq)]
struct Ready {
    time: f64,
    node: usize,
}

impl Eq for Ready {}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; tie-break on node index for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .expect("ready times are finite")
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Short label for a node kind, used as the `kind` metric label.
fn kind_label(kind: &NodeKind) -> &'static str {
    match kind {
        NodeKind::Call { .. } => "call",
        NodeKind::Realloc { .. } => "realloc",
        NodeKind::Transfer { .. } => "transfer",
    }
}

/// Runs Algorithm 1 over the node list and returns the maximum `EndTime`.
///
/// Nodes must be topologically ordered (parents before children), which
/// [`crate::augment::build`] guarantees.
///
/// # Panics
///
/// Panics if a node's parent index is not smaller than the node's own index.
pub fn makespan(nodes: &[AugNode]) -> f64 {
    run(nodes, None)
}

/// [`makespan`] with Algorithm-1 queue telemetry recorded into `metrics`:
///
/// * `estimator/queue_pops{kind}` — ready-queue pops per node kind;
/// * `estimator/node_seconds{kind}` — summed durations per node kind (the
///   estimator-side counterpart of the runtime's category totals);
/// * `estimator/device_serializations{kind}` and
///   `estimator/serialization_delay_seconds{kind}` — how often (and for how
///   long) a ready node stalled behind a completed node on an overlapping
///   mesh;
/// * `estimator/releases` — dependency releases, and
///   `estimator/makespan_seconds` — the returned makespan.
pub fn makespan_instrumented(nodes: &[AugNode], metrics: &mut MetricsRegistry) -> f64 {
    run(nodes, Some(metrics))
}

fn run(nodes: &[AugNode], mut metrics: Option<&mut MetricsRegistry>) -> f64 {
    if nodes.is_empty() {
        if let Some(m) = metrics {
            m.gauge_set("estimator/makespan_seconds", &[], 0.0);
        }
        return 0.0;
    }
    let n = nodes.len();
    for (i, node) in nodes.iter().enumerate() {
        for &p in &node.parents {
            assert!(p < i, "augmented nodes must be topologically ordered");
        }
    }

    // ReadyTime per node; pending parent counts.
    let mut ready_time = vec![0.0f64; n];
    let mut pending: Vec<usize> = nodes.iter().map(|v| v.parents.len()).collect();
    let mut end_time = vec![f64::NAN; n];

    // `last_end[i]` = completion time of the most recent node that touched
    // any device of nodes[i]'s mesh set. Instead of tracking distinct
    // meshes, we track per *node* and consult overlap, which is equivalent
    // for the small graphs involved (the paper's D.last bookkeeping).
    let mut completed: Vec<usize> = Vec::with_capacity(n);

    let mut heap = BinaryHeap::new();
    for (i, &p) in pending.iter().enumerate() {
        if p == 0 {
            heap.push(Ready { time: 0.0, node: i });
        }
    }

    let mut max_end = 0.0f64;
    while let Some(Ready { time, node }) = heap.pop() {
        // Device constraint: start no earlier than the end of any completed
        // node occupying an overlapping mesh.
        let mut start = time;
        for &c in &completed {
            if nodes[c].overlaps(&nodes[node]) {
                start = start.max(end_time[c]);
            }
        }
        let end = start + nodes[node].duration;
        end_time[node] = end;
        max_end = max_end.max(end);
        completed.push(node);

        if let Some(m) = metrics.as_deref_mut() {
            let kind = [("kind", kind_label(&nodes[node].kind))];
            m.counter_inc("estimator/queue_pops", &kind);
            m.counter_add("estimator/node_seconds", &kind, nodes[node].duration);
            if start > time {
                m.counter_inc("estimator/device_serializations", &kind);
                m.counter_add("estimator/serialization_delay_seconds", &kind, start - time);
            }
        }

        // Release children.
        for (j, cand) in nodes.iter().enumerate().skip(node + 1) {
            if cand.parents.contains(&node) {
                ready_time[j] = ready_time[j].max(end);
                pending[j] -= 1;
                if pending[j] == 0 {
                    heap.push(Ready {
                        time: ready_time[j],
                        node: j,
                    });
                    if let Some(m) = metrics.as_deref_mut() {
                        m.counter_inc("estimator/releases", &[]);
                    }
                }
            }
        }
    }
    if let Some(m) = metrics {
        m.gauge_set("estimator/makespan_seconds", &[], max_end);
    }
    max_end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::{AugNode, NodeKind};
    use real_cluster::{ClusterSpec, DeviceMesh};
    use real_dataflow::CallId;

    fn node(duration: f64, meshes: Vec<DeviceMesh>, parents: Vec<usize>) -> AugNode {
        AugNode {
            kind: NodeKind::Call {
                call: CallId(0),
                iter: 0,
            },
            duration,
            meshes,
            parents,
        }
    }

    fn meshes2() -> (DeviceMesh, DeviceMesh, DeviceMesh) {
        let c = ClusterSpec::h100(2);
        (
            DeviceMesh::whole_nodes(&c, 0, 1).unwrap(),
            DeviceMesh::whole_nodes(&c, 1, 1).unwrap(),
            DeviceMesh::full(&c),
        )
    }

    #[test]
    fn empty_graph_is_zero() {
        assert_eq!(makespan(&[]), 0.0);
    }

    #[test]
    fn chain_sums_durations() {
        let (a, _, _) = meshes2();
        let nodes = vec![
            node(1.0, vec![a], vec![]),
            node(2.0, vec![a], vec![0]),
            node(3.0, vec![a], vec![1]),
        ];
        assert_eq!(makespan(&nodes), 6.0);
    }

    #[test]
    fn disjoint_meshes_run_concurrently() {
        let (a, b, _) = meshes2();
        let nodes = vec![node(5.0, vec![a], vec![]), node(3.0, vec![b], vec![])];
        assert_eq!(makespan(&nodes), 5.0);
    }

    #[test]
    fn overlapping_meshes_serialize_even_without_edges() {
        let (a, _, full) = meshes2();
        let nodes = vec![node(5.0, vec![a], vec![]), node(3.0, vec![full], vec![])];
        // No dependency, but full overlaps a: they serialize.
        assert_eq!(makespan(&nodes), 8.0);
    }

    #[test]
    fn diamond_takes_longest_branch() {
        let (a, b, full) = meshes2();
        let nodes = vec![
            node(1.0, vec![full], vec![]),
            node(4.0, vec![a], vec![0]),
            node(2.0, vec![b], vec![0]),
            node(1.0, vec![full], vec![1, 2]),
        ];
        // 1 + max(4, 2) + 1 = 6.
        assert_eq!(makespan(&nodes), 6.0);
    }

    #[test]
    fn partial_overlap_through_shared_submesh() {
        let c = ClusterSpec::h100(1);
        let left = DeviceMesh::sub_node(&c, 0, 0, 4).unwrap();
        let right = DeviceMesh::sub_node(&c, 0, 4, 4).unwrap();
        let whole = DeviceMesh::full(&c);
        let nodes = vec![
            node(2.0, vec![left], vec![]),
            node(2.0, vec![right], vec![]),
            node(1.0, vec![whole], vec![]),
        ];
        // left and right overlap whole; whole is ready at 0 but the
        // scheduler pops lowest-ready-time first (ties by index): left at 0,
        // right at 0 (disjoint → parallel), then whole after both.
        assert_eq!(makespan(&nodes), 3.0);
    }

    #[test]
    fn zero_duration_nodes_are_free() {
        let (a, _, _) = meshes2();
        let nodes = vec![node(0.0, vec![a], vec![]), node(2.0, vec![a], vec![0])];
        assert_eq!(makespan(&nodes), 2.0);
    }

    #[test]
    fn instrumented_matches_plain_and_counts_queue_events() {
        let (a, _, full) = meshes2();
        let nodes = vec![node(5.0, vec![a], vec![]), node(3.0, vec![full], vec![])];
        let mut m = real_obs::MetricsRegistry::new();
        let inst = makespan_instrumented(&nodes, &mut m);
        assert_eq!(inst, makespan(&nodes));
        let kind = [("kind", "call")];
        assert_eq!(m.get("estimator/queue_pops", &kind).unwrap().scalar(), 2.0);
        assert_eq!(
            m.get("estimator/node_seconds", &kind).unwrap().scalar(),
            8.0
        );
        // The full-mesh node has no edge to the first but stalls behind it
        // on the shared devices — exactly one serialization of 5 seconds.
        assert_eq!(
            m.get("estimator/device_serializations", &kind)
                .unwrap()
                .scalar(),
            1.0
        );
        assert_eq!(
            m.get("estimator/serialization_delay_seconds", &kind)
                .unwrap()
                .scalar(),
            5.0
        );
        assert_eq!(
            m.get("estimator/makespan_seconds", &[]).unwrap().scalar(),
            8.0
        );
    }

    #[test]
    fn instrumented_counts_releases_along_chains() {
        let (a, _, _) = meshes2();
        let nodes = vec![
            node(1.0, vec![a], vec![]),
            node(2.0, vec![a], vec![0]),
            node(3.0, vec![a], vec![1]),
        ];
        let mut m = real_obs::MetricsRegistry::new();
        assert_eq!(makespan_instrumented(&nodes, &mut m), 6.0);
        assert_eq!(m.get("estimator/releases", &[]).unwrap().scalar(), 2.0);
    }

    #[test]
    #[should_panic(expected = "topologically ordered")]
    fn forward_edges_panic() {
        let (a, _, _) = meshes2();
        let nodes = vec![node(1.0, vec![a], vec![1]), node(1.0, vec![a], vec![])];
        makespan(&nodes);
    }
}
