//! One-stop imports for typical `real-rs` usage.
//!
//! ```
//! use real_core::prelude::*;
//! let cluster = ClusterSpec::h100(2);
//! let cfg = RlhfConfig::instruct_gpt(512);
//! assert_eq!(cluster.total_gpus(), 16);
//! assert_eq!(cfg.context_len(), 2048);
//! ```

pub use crate::advisor::{recommend, Recommendation};
pub use crate::{
    Experiment, ExperimentReport, PlanFailure, PlannedExperiment, SpecPlannedExperiment, Tenant,
};
pub use real_cluster::{
    ClusterHealth, ClusterSpec, CommModel, DeviceMesh, GpuHealth, GpuId, GpuSpec,
};
pub use real_dataflow::algo::{self, RlhfConfig};
pub use real_dataflow::render::{to_ascii, to_dot};
pub use real_dataflow::{
    BuiltGraph, CallAssignment, CallHook, CallId, CallType, DataflowGraph, ExecutionPlan,
    GraphSpec, ModelFunctionCallDef, SpecError,
};
pub use real_estimator::{probe, CostMemo, Estimator, MemoSnapshot};
pub use real_model::specdec::{AcceptanceCurve, SpecDecodeConfig};
pub use real_model::{CostModel, MemoryModel, ModelSpec, ParallelStrategy};
pub use real_obs::{EventStream, MetricsRegistry, MetricsSnapshot};
pub use real_profiler::{calibrated_acceptance, SpecTask};
pub use real_profiler::{ProfileConfig, ProfileDb, Profiler};
pub use real_runtime::{
    baselines, AsyncStats, EngineConfig, FaultAbort, FaultStats, ReplanEvent, ReplanOutcome,
    ReplanPolicy, ReplanReason, ReplanStats, RequestFault, RunError, RunReport, RuntimeEngine,
};
pub use real_search::{
    brute_force, compare, greedy_plan, heuristic_plan, parallel_search, resume, search,
    search_speculative, search_speculative_with_memo, search_warm, BruteConfig, ChainState,
    McmcConfig, PlanComparison, PruneLevel, SearchCheckpoint, SearchResult, SearchSpace, SpecMenu,
    SpecSearchResult,
};
pub use real_sim::{Category, FaultClock, FaultEvent, FaultPlan, Timelines, Trace};
