//! Tenant API for multi-tenant scheduling.
//!
//! A [`Tenant`] wraps an [`Experiment`] with the identity and service
//! parameters the `real-sched` scheduler needs: a stable id (seeds the
//! tenant's RNG substream — independent of list position, so admitting or
//! removing a co-tenant never shifts another tenant's stream), a priority
//! weight for the priority-weighted-makespan objective, and the number of
//! RLHF iterations the tenant wants to run.

use crate::experiment::Experiment;

/// One tenant workload: an experiment plus scheduling identity/weights.
#[derive(Debug, Clone)]
pub struct Tenant {
    name: String,
    id: u64,
    priority: f64,
    iterations: usize,
    experiment: Experiment,
}

impl Tenant {
    /// Wraps `experiment` as a tenant. Priority defaults to `1.0` and
    /// iterations to `2`.
    pub fn new(name: impl Into<String>, id: u64, experiment: Experiment) -> Self {
        Self {
            name: name.into(),
            id,
            priority: 1.0,
            iterations: 2,
            experiment,
        }
    }

    /// Sets the priority weight (clamped to be positive). Higher-priority
    /// tenants weigh more in the scheduler's objective, so they get the
    /// larger / better-placed allocations when capacity is contended.
    pub fn with_priority(mut self, priority: f64) -> Self {
        self.priority = priority.max(f64::MIN_POSITIVE);
        self
    }

    /// Sets the number of RLHF iterations to run (at least 1).
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stable identity; seeds the tenant's RNG substream.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Priority weight.
    pub fn priority(&self) -> f64 {
        self.priority
    }

    /// RLHF iterations to run.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The wrapped experiment.
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::ClusterSpec;
    use real_dataflow::algo::RlhfConfig;
    use real_model::ModelSpec;

    fn experiment() -> Experiment {
        Experiment::dpo(
            ClusterSpec::h100(1),
            ModelSpec::llama3_7b(),
            RlhfConfig::instruct_gpt(32),
        )
    }

    #[test]
    fn builders_clamp_and_accessors_expose() {
        let t = Tenant::new("prod", 3, experiment())
            .with_priority(-1.0)
            .with_iterations(0);
        assert_eq!(t.name(), "prod");
        assert_eq!(t.id(), 3);
        assert!(t.priority() > 0.0);
        assert_eq!(t.iterations(), 1);
        assert!(t.experiment().graph().n_calls() > 0);
    }

    #[test]
    fn defaults_are_neutral() {
        let t = Tenant::new("dev", 0, experiment());
        assert_eq!(t.priority(), 1.0);
        assert_eq!(t.iterations(), 2);
    }
}
