//! The experiment facade: profile → search → run, like the paper's `@auto`
//! decorator (Appendix B).

use crate::report::ExperimentReport;
use real_cluster::{ClusterSpec, DeviceMesh};
use real_dataflow::algo::{self, RlhfConfig};
use real_dataflow::{CallType, DataflowGraph, ExecutionPlan, GraphSpec, SpecError};
use real_estimator::{probe, Estimator};
use real_estimator::{CostMemo, MemoSnapshot};
use real_model::ModelSpec;
use real_profiler::{ProfileConfig, Profiler};
use real_runtime::{EngineConfig, ReplanPolicy, RunError, RuntimeEngine};
use real_search::{
    greedy_plan, heuristic_plan, search, search_speculative_with_memo, ImpossibleCall, McmcConfig,
    PruneLevel, SearchResult, SearchSpace, SpecMenu, SpecSearchResult,
};
use std::collections::HashSet;

/// An RLHF experiment: a cluster, a workflow, and the knobs needed to plan
/// and execute it.
#[derive(Debug, Clone)]
pub struct Experiment {
    cluster: ClusterSpec,
    graph: DataflowGraph,
    profile_config: ProfileConfig,
    engine_config: EngineConfig,
    prune_level: PruneLevel,
    seed: u64,
    /// Pre-loaded profiles (keyed by architecture name); architectures not
    /// covered here are profiled on demand. Lets users reuse profiling
    /// statistics across experiments within a model family (§8.2).
    preloaded_profiles: Vec<real_profiler::ProfileDb>,
    /// Elastic re-planning policy; [`Self::run`] routes through
    /// [`RuntimeEngine::run_replan`] when set together with a fault plan.
    replan_policy: Option<ReplanPolicy>,
    /// Async off-policy staleness bound; [`Self::run`] routes through
    /// [`RuntimeEngine::run_async`] when set (unless re-planning is
    /// active, which takes precedence).
    async_staleness: Option<u32>,
}

/// Why automatic planning failed.
#[derive(Debug, Clone)]
pub enum PlanFailure {
    /// Some call has no valid option on this cluster: the workload is
    /// impossible regardless of search budget.
    ImpossibleWorkload(ImpossibleCall),
    /// The search ran but every visited plan exceeded device memory; the
    /// best (infeasible) result is attached for diagnosis.
    NoFeasiblePlan(Box<SearchResult>),
}

impl std::fmt::Display for PlanFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanFailure::ImpossibleWorkload(e) => write!(f, "{e}"),
            PlanFailure::NoFeasiblePlan(r) => write!(
                f,
                "no memory-feasible plan found (best infeasible TimeCost {:.1}s)",
                r.best_time_cost
            ),
        }
    }
}

impl std::error::Error for PlanFailure {}

/// The outcome of automatic planning.
#[derive(Debug, Clone)]
pub struct PlannedExperiment {
    /// The selected execution plan.
    pub plan: ExecutionPlan,
    /// Search statistics (trace, acceptance, best cost).
    pub search: SearchResult,
    /// Simulated seconds spent profiling before the search (Fig. 12 left).
    pub profiling_secs: f64,
}

/// The outcome of speculation-aware planning
/// ([`Experiment::plan_speculative`]): the chosen plan (possibly with
/// draft/verify decode attached), the full search statistics, and the cost
/// memo snapshot for the next search to warm-start from.
#[derive(Debug, Clone)]
pub struct SpecPlannedExperiment {
    /// The selected execution plan (speculative only when it strictly beat
    /// plain decode).
    pub plan: ExecutionPlan,
    /// Base-search plus speculation-chain statistics.
    pub result: SpecSearchResult,
    /// Simulated seconds spent profiling before the search.
    pub profiling_secs: f64,
    /// Cost-memo snapshot taken after the search, restorable by a later
    /// search over the same pricing context (`real plan --memo-out`).
    pub memo: MemoSnapshot,
    /// Whether the `warm` snapshot passed in was accepted (matching context
    /// fingerprint) — `false` means a cold start.
    pub warm_start: bool,
}

impl Experiment {
    /// Creates an experiment from a custom workflow graph.
    pub fn new(cluster: ClusterSpec, graph: DataflowGraph) -> Self {
        Self {
            cluster,
            graph,
            profile_config: ProfileConfig::paper(),
            engine_config: EngineConfig::default(),
            prune_level: PruneLevel::Aggressive,
            seed: 1,
            preloaded_profiles: Vec::new(),
            replan_policy: None,
            async_staleness: None,
        }
    }

    /// Creates an experiment from a `graph.json` workflow specification
    /// (the [`GraphSpec`] DSL): the graph is validated structurally, the
    /// spec's per-call hooks are installed into the engine configuration,
    /// and an `offpolicy` section enables staleness-bounded async
    /// execution.
    ///
    /// # Errors
    ///
    /// Returns the spec's first [`SpecError`].
    ///
    /// # Examples
    ///
    /// ```
    /// use real_cluster::ClusterSpec;
    /// use real_core::Experiment;
    /// use real_dataflow::GraphSpec;
    ///
    /// let json = r#"{
    ///     "models": [{"role": "m", "arch": "7b"}],
    ///     "data": ["prompts"],
    ///     "calls": [
    ///         {"name": "m_gen", "model": "m", "kind": "gen",
    ///          "batch": 32, "prompt_len": 128, "gen_len": 128,
    ///          "inputs": ["prompts"], "outputs": ["seq"]},
    ///         {"name": "m_train", "model": "m", "kind": "train",
    ///          "batch": 32, "seq_len": 256, "inputs": ["seq"]}
    ///     ],
    ///     "offpolicy": {"staleness": 1}
    /// }"#;
    /// let spec: GraphSpec = serde_json::from_str(json).unwrap();
    /// let exp = Experiment::from_graph(ClusterSpec::h100(1), &spec).unwrap();
    /// assert_eq!(exp.async_staleness(), Some(1));
    /// ```
    pub fn from_graph(cluster: ClusterSpec, spec: &GraphSpec) -> Result<Self, SpecError> {
        let built = spec.build()?;
        let mut exp = Self::new(cluster, built.graph);
        exp.engine_config.call_hooks = built.hooks;
        exp.async_staleness = built.async_staleness;
        Ok(exp)
    }

    /// Convenience: the standard PPO workflow (Fig. 4).
    pub fn ppo(cluster: ClusterSpec, actor: ModelSpec, critic: ModelSpec, cfg: RlhfConfig) -> Self {
        let graph = algo::ppo(&actor, &critic, &cfg);
        Self::new(cluster, graph)
    }

    /// Convenience: the DPO workflow (§8.3).
    pub fn dpo(cluster: ClusterSpec, actor: ModelSpec, cfg: RlhfConfig) -> Self {
        Self::new(cluster.clone(), algo::dpo(&actor, &cfg))
    }

    /// Convenience: the GRPO workflow (§8.3).
    pub fn grpo(
        cluster: ClusterSpec,
        actor: ModelSpec,
        reward: ModelSpec,
        cfg: RlhfConfig,
    ) -> Self {
        Self::new(cluster.clone(), algo::grpo(&actor, &reward, &cfg))
    }

    /// Convenience: the ReMax workflow (§8.3).
    pub fn remax(
        cluster: ClusterSpec,
        actor: ModelSpec,
        reward: ModelSpec,
        cfg: RlhfConfig,
    ) -> Self {
        Self::new(cluster.clone(), algo::remax(&actor, &reward, &cfg))
    }

    /// Convenience: the RAFT workflow (reward-ranked fine-tuning).
    pub fn raft(
        cluster: ClusterSpec,
        actor: ModelSpec,
        reward: ModelSpec,
        cfg: RlhfConfig,
    ) -> Self {
        Self::new(cluster.clone(), algo::raft(&actor, &reward, &cfg))
    }

    /// Convenience: the iterative (online) DPO workflow.
    pub fn iterative_dpo(
        cluster: ClusterSpec,
        actor: ModelSpec,
        reward: ModelSpec,
        cfg: RlhfConfig,
    ) -> Self {
        Self::new(cluster.clone(), algo::iterative_dpo(&actor, &reward, &cfg))
    }

    /// Overrides the RNG seed (profiling noise, search, runtime jitter).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.engine_config.seed = seed;
        self
    }

    /// Uses the reduced profiling grid (fast; unit tests and doctests).
    pub fn with_quick_profile(mut self) -> Self {
        self.profile_config = ProfileConfig::quick();
        self
    }

    /// Overrides the runtime engine configuration.
    pub fn with_engine_config(mut self, config: EngineConfig) -> Self {
        self.engine_config = config;
        self
    }

    /// Overrides the search-space pruning level (Fig. 14's knob).
    pub fn with_prune_level(mut self, level: PruneLevel) -> Self {
        self.prune_level = level;
        self
    }

    /// Injects a deterministic fault schedule into [`Self::run`]. The
    /// runtime hardens into its resilient dispatch protocol (deadlines,
    /// bounded retries, degraded mode) and the report gains
    /// [`real_runtime::FaultStats`] accounting.
    pub fn with_fault_plan(mut self, plan: real_sim::FaultPlan) -> Self {
        self.engine_config.fault_plan = Some(plan);
        self
    }

    /// Supplies previously collected profiles (e.g. loaded from disk);
    /// matching architectures skip re-profiling in [`Self::prepare`].
    pub fn with_profiles(mut self, profiles: Vec<real_profiler::ProfileDb>) -> Self {
        self.preloaded_profiles = profiles;
        self
    }

    /// Enables elastic re-planning: when a fault plan is also injected,
    /// [`Self::run`] executes through [`RuntimeEngine::run_replan`], which
    /// can switch the run to a freshly searched plan on the surviving GPUs
    /// when the policy's triggers fire. Without a fault plan the policy is
    /// inert and runs are byte-identical to plain execution.
    pub fn with_replan_policy(mut self, policy: ReplanPolicy) -> Self {
        self.replan_policy = Some(policy);
        self
    }

    /// The configured re-plan policy, if any.
    pub fn replan_policy(&self) -> Option<&ReplanPolicy> {
        self.replan_policy.as_ref()
    }

    /// Enables async off-policy execution: [`Self::run`] routes through
    /// [`RuntimeEngine::run_async`] with the given staleness bound.
    pub fn with_async_offpolicy(mut self, staleness: u32) -> Self {
        self.async_staleness = Some(staleness);
        self
    }

    /// The async off-policy staleness bound, if the mode is enabled
    /// (via [`Self::with_async_offpolicy`] or the spec's `offpolicy`
    /// section).
    pub fn async_staleness(&self) -> Option<u32> {
        self.async_staleness
    }

    /// The experiment's workflow.
    pub fn graph(&self) -> &DataflowGraph {
        &self.graph
    }

    /// The experiment's cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The engine configuration used by [`Self::run`].
    pub fn engine_config(&self) -> &EngineConfig {
        &self.engine_config
    }

    /// Profiles every distinct architecture in the workflow (reusing one
    /// profile per architecture, as the paper does within a model family)
    /// and returns the estimator plus the simulated profiling time.
    pub fn prepare(&self) -> (Estimator, f64) {
        let mut profiler =
            Profiler::new(self.cluster.clone(), self.profile_config.clone(), self.seed);
        let mut seen: HashSet<String> = HashSet::new();
        let mut profiles = Vec::new();
        let mut secs = 0.0;
        for call in self.graph.calls() {
            if seen.insert(call.model.name.clone()) {
                if let Some(db) = self
                    .preloaded_profiles
                    .iter()
                    .find(|p| p.model_name() == call.model.name)
                {
                    // Reused statistics cost nothing at experiment time.
                    profiles.push(db.clone());
                } else {
                    let db = profiler.profile(&call.model);
                    secs += db.profiling_secs();
                    profiles.push(db);
                }
            }
        }
        let est = Estimator::new(self.cluster.clone(), self.graph.clone(), profiles)
            .expect("profiles cover every architecture by construction");
        (est, secs)
    }

    /// The pruned per-call option space.
    ///
    /// # Panics
    ///
    /// Panics when the workload cannot fit the cluster at all; use
    /// [`Self::try_search_space`] to handle that as a value.
    pub fn search_space(&self) -> SearchSpace {
        SearchSpace::build(&self.cluster, &self.graph, self.prune_level)
    }

    /// Fallible variant of [`Self::search_space`].
    ///
    /// # Errors
    ///
    /// Returns [`ImpossibleCall`] naming an unfittable call.
    pub fn try_search_space(&self) -> Result<SearchSpace, ImpossibleCall> {
        SearchSpace::try_build(&self.cluster, &self.graph, self.prune_level)
    }

    /// Automatic planning: profile, build the space, run the MCMC search.
    ///
    /// # Errors
    ///
    /// Returns [`PlanFailure`] when the workload cannot fit the cluster or
    /// no memory-feasible plan was found within the budget.
    pub fn plan_auto(&self, cfg: &McmcConfig) -> Result<PlannedExperiment, PlanFailure> {
        let space = self
            .try_search_space()
            .map_err(PlanFailure::ImpossibleWorkload)?;
        let (est, profiling_secs) = self.prepare();
        let mut cfg = cfg.clone();
        cfg.seed = self.seed.wrapping_add(cfg.seed);
        let result = search(&est, &space, &cfg);
        if !result.feasible {
            return Err(PlanFailure::NoFeasiblePlan(Box::new(result)));
        }
        Ok(PlannedExperiment {
            plan: result.best_plan.clone(),
            search: result,
            profiling_secs,
        })
    }

    /// Automatic planning with `n_chains` independent MCMC chains on
    /// separate cores (the paper's multi-core search extension).
    ///
    /// # Errors
    ///
    /// Returns [`PlanFailure`] when the workload cannot fit the cluster or
    /// no memory-feasible plan was found within the budget.
    pub fn plan_auto_parallel(
        &self,
        cfg: &McmcConfig,
        n_chains: usize,
    ) -> Result<PlannedExperiment, PlanFailure> {
        self.plan_auto_parallel_on(cfg, n_chains, n_chains)
    }

    /// Like [`plan_auto_parallel`](Self::plan_auto_parallel), but with an
    /// explicit worker-thread cap. The chosen plan is bit-identical for any
    /// `threads >= 1`: chain outcomes depend only on their per-chain seeds
    /// and the merge scans results in chain order, never in completion
    /// order (the `real plan --threads` contract, see `docs/SEARCH.md`).
    ///
    /// # Errors
    ///
    /// Returns [`PlanFailure`] when the workload cannot fit the cluster or
    /// no memory-feasible plan was found within the budget.
    pub fn plan_auto_parallel_on(
        &self,
        cfg: &McmcConfig,
        n_chains: usize,
        threads: usize,
    ) -> Result<PlannedExperiment, PlanFailure> {
        let space = self
            .try_search_space()
            .map_err(PlanFailure::ImpossibleWorkload)?;
        let (est, profiling_secs) = self.prepare();
        let mut cfg = cfg.clone();
        cfg.seed = self.seed.wrapping_add(cfg.seed);
        let result = real_search::parallel_search_on(&est, &space, &cfg, n_chains, threads);
        if !result.feasible {
            return Err(PlanFailure::NoFeasiblePlan(Box::new(result)));
        }
        Ok(PlannedExperiment {
            plan: result.best_plan.clone(),
            search: result,
            profiling_secs,
        })
    }

    /// Speculation-aware automatic planning: like [`Self::plan_auto`], but
    /// the search may attach draft/verify decode ([`SpecMenu`]) to
    /// generation calls, and prices every proposal through a persistent
    /// cost memo. Pass [`SpecMenu::empty`] to keep speculation off while
    /// still using the memo path (`real plan --memo-in/--memo-out` without
    /// `--spec-decode`); pass `warm` to restore a snapshot from an earlier
    /// search — it is accepted only when its context fingerprint (cluster,
    /// graph, profiles, health overlay) matches, and ignored otherwise.
    /// Memoization is exact, so warm and cold searches choose bit-identical
    /// plans; with an empty menu the plan is identical to
    /// [`Self::plan_auto`]'s.
    ///
    /// # Errors
    ///
    /// Returns [`PlanFailure`] when the workload cannot fit the cluster or
    /// no memory-feasible plan was found within the budget.
    pub fn plan_speculative(
        &self,
        cfg: &McmcConfig,
        menu: &SpecMenu,
        warm: Option<&MemoSnapshot>,
    ) -> Result<SpecPlannedExperiment, PlanFailure> {
        let space = self
            .try_search_space()
            .map_err(PlanFailure::ImpossibleWorkload)?;
        let (est, profiling_secs) = self.prepare();
        let mut cfg = cfg.clone();
        cfg.seed = self.seed.wrapping_add(cfg.seed);
        let context = est.context_fingerprint();
        let restored = warm.and_then(|s| CostMemo::from_snapshot(s, context));
        let warm_start = restored.is_some();
        let mut memo = restored.unwrap_or_default();
        let result = search_speculative_with_memo(&est, &space, menu, &cfg, &mut memo);
        if !result.feasible {
            return Err(PlanFailure::NoFeasiblePlan(Box::new(result.base)));
        }
        Ok(SpecPlannedExperiment {
            plan: result.best_plan.clone(),
            result,
            profiling_secs,
            memo: memo.snapshot(context),
            warm_start,
        })
    }

    /// The REAL-Heuristic symmetric plan (§8.1 baseline).
    pub fn plan_heuristic(&self) -> ExecutionPlan {
        let (est, _) = self.prepare();
        heuristic_plan(&est)
    }

    /// The greedy per-call-minimum plan (§5.2's search seed; may OOM).
    pub fn plan_greedy(&self) -> ExecutionPlan {
        let (est, _) = self.prepare();
        greedy_plan(&est, &self.search_space())
    }

    /// A disjoint-mesh plan for async off-policy runs: generation calls of
    /// trainable models on one half of the cluster, everything else on the
    /// other half, each call on a canonical strategy filling its half
    /// ([`probe::fit_assignment`]). With [`Self::with_async_offpolicy`]
    /// enabled this lets generation for the next iteration overlap the
    /// current training step; under the synchronous master it is merely a
    /// (usually suboptimal) placement. Returns `None` when the cluster
    /// cannot be halved (a single-GPU node) or no canonical strategy fits
    /// a half.
    pub fn plan_split(&self) -> Option<ExecutionPlan> {
        let c = &self.cluster;
        let (gen_mesh, rest_mesh) = if c.n_nodes >= 2 && (c.n_nodes / 2).is_power_of_two() {
            let half = c.n_nodes / 2;
            (
                DeviceMesh::whole_nodes(c, 0, half).ok()?,
                DeviceMesh::whole_nodes(c, half, half).ok()?,
            )
        } else if c.gpus_per_node >= 2 {
            let half = c.gpus_per_node / 2;
            (
                DeviceMesh::sub_node(c, 0, 0, half).ok()?,
                DeviceMesh::sub_node(c, 0, half, half).ok()?,
            )
        } else {
            return None;
        };
        let assignments: Vec<_> = self
            .graph
            .calls()
            .iter()
            .map(|call| {
                let relaxed = matches!(call.call_type, CallType::Generate { .. })
                    && self.graph.is_trainable(&call.model_name);
                let mesh = if relaxed { gen_mesh } else { rest_mesh };
                probe::fit_assignment(&mesh, call)
            })
            .collect::<Option<Vec<_>>>()?;
        ExecutionPlan::new(&self.graph, c, assignments).ok()
    }

    /// Executes a plan on the runtime engine for `iterations` iterations.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::OutOfMemory`] when the plan does not fit.
    pub fn run(
        &self,
        plan: &ExecutionPlan,
        iterations: usize,
    ) -> Result<ExperimentReport, RunError> {
        let mut engine_config = self.engine_config.clone();
        // Resilient dispatch derives request deadlines from predicted call
        // costs. When a fault schedule is injected and the caller did not
        // supply predictions, fill them from the §5 estimator so deadlines
        // reflect the planner's expectations rather than just the nominal
        // simulation.
        let mut prepared: Option<Estimator> = None;
        if engine_config.fault_plan.is_some() && engine_config.predicted_secs.is_empty() {
            let (est, _) = self.prepare();
            engine_config.predicted_secs = self
                .graph
                .iter()
                .map(|(id, def)| {
                    (
                        def.call_name.clone(),
                        est.call_duration(id, plan.assignment(id)),
                    )
                })
                .collect();
            prepared = Some(est);
        }
        let faulted = engine_config.fault_plan.is_some();
        let engine = RuntimeEngine::new(self.cluster.clone(), self.graph.clone(), engine_config);
        let run = match &self.replan_policy {
            Some(policy) if faulted => {
                let est = match prepared {
                    Some(est) => est,
                    None => self.prepare().0,
                };
                engine.run_replan(plan, iterations, policy, &est)?
            }
            _ => match self.async_staleness {
                Some(s) => engine.run_async(plan, iterations, s)?,
                None => engine.run(plan, iterations)?,
            },
        };
        Ok(ExperimentReport::new(&self.graph, plan.clone(), run))
    }

    /// Assembles the unified observability event stream for a finished run:
    /// per-GPU kernel spans and link-utilization counters from the simulator
    /// trace, master-lane call spans with flow arrows to the workers, and
    /// per-GPU memory counter tracks. Export with
    /// [`real_obs::chrome::to_chrome_string`] and open in Perfetto or
    /// `chrome://tracing`. The kernel spans require the engine trace to be
    /// enabled ([`EngineConfig::trace_capacity`] > 0); the master-lane spans,
    /// flows, and memory tracks are always present.
    pub fn event_stream(&self, report: &ExperimentReport) -> real_obs::EventStream {
        real_runtime::obs::build_event_stream(
            &self.cluster,
            &self.graph,
            &report.plan,
            &self.engine_config,
            &report.run,
        )
    }

    /// Metrics for a finished run: per-category busy seconds, throughput
    /// gauges, request/response counters, and per-call duration histograms.
    /// When `search` statistics are supplied (e.g. from
    /// [`PlannedExperiment::search`]), the MCMC chain telemetry is merged in
    /// so one snapshot covers both planning and execution. The namespaces
    /// (`runtime/`, `search/`) are disjoint, so the merge cannot collide.
    pub fn metrics(
        &self,
        report: &ExperimentReport,
        search: Option<&SearchResult>,
    ) -> real_obs::MetricsRegistry {
        let mut metrics = real_runtime::obs::run_metrics(&self.cluster, &report.run);
        if let Some(s) = search {
            metrics.merge(&s.telemetry);
        }
        metrics
    }

    /// Builds the phase-attributed [`real_obs::ProfileReport`] for a
    /// finished run: critical path, Fig. 8-style phase shares, per-GPU
    /// utilization, comm/compute overlap, and the per-call
    /// estimator-vs-simulated gap (Fig. 12) computed against `est` for the
    /// placements the run actually used. Pass the estimator returned by
    /// [`Experiment::prepare`] (or the one used for planning) to avoid
    /// re-profiling.
    pub fn profile_report(
        &self,
        report: &ExperimentReport,
        est: &Estimator,
        top_k: usize,
    ) -> real_obs::ProfileReport {
        let stream = self.event_stream(report);
        let mut profile = real_obs::ProfileReport::from_stream(&stream, top_k);
        for (id, def) in self.graph.iter() {
            let estimated = est.call_duration(id, report.plan.assignment(id));
            if let Some(simulated) = report.run.call_mean(&def.call_name) {
                profile.estimator_gap.push(real_obs::profile::CallGap::new(
                    &def.call_name,
                    estimated,
                    simulated,
                ));
            }
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn quick_search() -> McmcConfig {
        McmcConfig {
            max_steps: 1_500,
            time_limit: Duration::from_secs(30),
            ..McmcConfig::default()
        }
    }

    fn experiment() -> Experiment {
        Experiment::ppo(
            ClusterSpec::h100(1),
            ModelSpec::llama3_7b(),
            ModelSpec::llama3_7b().critic(),
            RlhfConfig::instruct_gpt(64),
        )
        .with_quick_profile()
    }

    #[test]
    fn auto_plan_runs_end_to_end() {
        let exp = experiment();
        let planned = exp.plan_auto(&quick_search()).unwrap();
        assert!(planned.profiling_secs > 0.0);
        let report = exp.run(&planned.plan, 2).unwrap();
        assert!(report.run.iter_time > 0.0);
        assert!(report.tokens_per_sec > 0.0);
    }

    #[test]
    fn searched_beats_heuristic_here_too() {
        let exp = experiment();
        let planned = exp.plan_auto(&quick_search()).unwrap();
        let heuristic = exp.plan_heuristic();
        let searched_t = exp.run(&planned.plan, 2).unwrap().run.iter_time;
        let heuristic_t = exp.run(&heuristic, 2).unwrap().run.iter_time;
        assert!(
            searched_t < heuristic_t * 1.05,
            "searched {searched_t} vs heuristic {heuristic_t}"
        );
    }

    #[test]
    fn seeds_are_deterministic() {
        let a = experiment()
            .with_seed(9)
            .plan_auto(&quick_search())
            .unwrap();
        let b = experiment()
            .with_seed(9)
            .plan_auto(&quick_search())
            .unwrap();
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn preloaded_profiles_skip_reprofiling() {
        let exp = experiment();
        let mut profiler = Profiler::new(
            exp.cluster().clone(),
            real_profiler::ProfileConfig::quick(),
            exp.engine_config().seed,
        );
        let dbs = vec![
            profiler.profile(&ModelSpec::llama3_7b()),
            profiler.profile(&ModelSpec::llama3_7b().critic()),
        ];
        let (_, secs) = exp.clone().with_profiles(dbs).prepare();
        assert_eq!(secs, 0.0, "everything preloaded, nothing to profile");
        let (_, secs_fresh) = exp.prepare();
        assert!(secs_fresh > 0.0);
    }

    #[test]
    fn observability_covers_search_and_run() {
        let engine = EngineConfig {
            trace_capacity: 4096,
            ..EngineConfig::default()
        };
        let exp = experiment().with_engine_config(engine);
        let planned = exp.plan_auto(&quick_search()).unwrap();
        let report = exp.run(&planned.plan, 1).unwrap();

        let stream = exp.event_stream(&report);
        stream.check_invariants().unwrap();
        assert!(!stream.events().is_empty());
        assert!(stream
            .events()
            .iter()
            .any(|e| matches!(e, real_obs::StreamEvent::Counter { .. })));

        let metrics = exp.metrics(&report, Some(&planned.search));
        assert!(metrics.get("runtime/iterations", &[]).is_some());
        assert!(metrics.iter().any(|(k, _)| k.name() == "search/steps"));
        assert!(metrics
            .iter()
            .any(|(k, _)| k.name() == "runtime/category_seconds"));
        // Without search statistics only the runtime namespace is present.
        let run_only = exp.metrics(&report, None);
        assert!(run_only
            .iter()
            .all(|(k, _)| k.name().starts_with("runtime/")));
    }

    #[test]
    fn from_graph_installs_hooks_and_staleness() {
        let json = r#"{
            "models": [{"role": "m", "arch": "7b"}],
            "data": ["prompts"],
            "calls": [
                {"name": "m_gen", "model": "m", "kind": "gen",
                 "batch": 32, "prompt_len": 128, "gen_len": 128,
                 "inputs": ["prompts"], "outputs": ["seq"],
                 "hooks": {"pre_secs": 0.5}},
                {"name": "m_train", "model": "m", "kind": "train",
                 "batch": 32, "seq_len": 256, "inputs": ["seq"]}
            ],
            "offpolicy": {"staleness": 2}
        }"#;
        let spec: GraphSpec = serde_json::from_str(json).unwrap();
        let exp = Experiment::from_graph(ClusterSpec::h100(1), &spec).unwrap();
        assert_eq!(exp.async_staleness(), Some(2));
        assert_eq!(exp.engine_config().hook_secs("m_gen"), (0.5, 0.0));
        assert_eq!(exp.graph().n_calls(), 2);
    }

    #[test]
    fn split_plan_overlaps_async_run() {
        let exp = experiment().with_quick_profile().with_async_offpolicy(1);
        let plan = exp.plan_split().expect("8-GPU node halves");
        let report = exp.run(&plan, 4).unwrap();
        assert!(report.run.async_stats.relaxed_calls > 0);
        assert!(report.run.async_stats.gen_train_overlap_secs > 0.0);
        assert!(report.run.async_stats.max_observed_staleness <= 1);
    }

    #[test]
    fn all_algorithms_construct() {
        let c = ClusterSpec::h100(1);
        let a = ModelSpec::llama3_7b();
        let cfg = RlhfConfig::instruct_gpt(64);
        assert_eq!(
            Experiment::dpo(c.clone(), a.clone(), cfg).graph().n_calls(),
            2
        );
        assert_eq!(
            Experiment::grpo(c.clone(), a.clone(), a.critic(), cfg)
                .graph()
                .n_calls(),
            4
        );
        assert_eq!(
            Experiment::remax(c.clone(), a.clone(), a.critic(), cfg)
                .graph()
                .n_calls(),
            6
        );
    }
}
