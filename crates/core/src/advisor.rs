//! Cluster-size recommendation (§8.4 "Practical Suggestions").
//!
//! The paper observes that RLHF throughput scales super-linearly while the
//! workload is compute-bound and sub-linearly once generation's memory-IO
//! floor dominates, and recommends provisioning at the transition point —
//! using static-memory utilization (< 60% signalling diminishing returns)
//! as the heuristic. This module automates that procedure: it plans and
//! runs the workload across candidate cluster sizes and reports the
//! recommended allocation.

use crate::experiment::Experiment;
use real_search::McmcConfig;
use real_util::Table;

/// The paper's utilization threshold: below this, additional GPUs give
/// diminishing returns (§8.4, Fig. 17 right).
pub const UTILIZATION_THRESHOLD: f64 = 0.60;

/// Scaling measurement at one cluster size.
#[derive(Debug, Clone)]
pub struct SizePoint {
    /// Nodes (8 GPUs each).
    pub nodes: u32,
    /// Measured tokens per second under the searched plan.
    pub tokens_per_sec: f64,
    /// Throughput ratio vs. the previous (half-size) point.
    pub scaling_vs_half: Option<f64>,
    /// Mean static-memory utilization.
    pub static_utilization: f64,
    /// Whether the search found any feasible plan at this size.
    pub feasible: bool,
}

/// The advisor's output.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Per-size measurements (ascending node counts).
    pub points: Vec<SizePoint>,
    /// Recommended node count, or `None` if nothing feasible.
    pub recommended_nodes: Option<u32>,
}

impl Recommendation {
    /// Renders the sweep and the recommendation.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "nodes",
            "GPUs",
            "tokens/s",
            "scaling vs half",
            "static util",
        ]);
        for p in &self.points {
            t.row(vec![
                p.nodes.to_string(),
                (p.nodes * 8).to_string(),
                if p.feasible {
                    format!("{:.0}", p.tokens_per_sec)
                } else {
                    "OOM".into()
                },
                p.scaling_vs_half
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.0}%", p.static_utilization * 100.0),
            ]);
        }
        match self.recommended_nodes {
            Some(n) => format!(
                "{}recommendation: {n} nodes ({} GPUs) — the last point before \
                 static-memory utilization drops below {:.0}% (§8.4)\n",
                t.render(),
                n * 8,
                UTILIZATION_THRESHOLD * 100.0
            ),
            None => format!(
                "{}recommendation: none — no candidate size fits\n",
                t.render()
            ),
        }
    }
}

/// Sweeps `candidate_nodes` (ascending), planning and running the workload
/// produced by `make_experiment` at each size, and recommends the largest
/// size whose static utilization stays at or above the §8.4 threshold
/// (falling back to the throughput-maximizing feasible size when every
/// point is below it).
pub fn recommend<F>(
    candidate_nodes: &[u32],
    search: &McmcConfig,
    iterations: usize,
    mut make_experiment: F,
) -> Recommendation
where
    F: FnMut(u32) -> Experiment,
{
    let mut points: Vec<SizePoint> = Vec::new();
    let mut prev: Option<f64> = None;
    for &nodes in candidate_nodes {
        let exp = make_experiment(nodes);
        let point = match exp.plan_auto(search) {
            Err(_) => SizePoint {
                nodes,
                tokens_per_sec: 0.0,
                scaling_vs_half: None,
                static_utilization: 0.0,
                feasible: false,
            },
            Ok(planned) => match exp.run(&planned.plan, iterations) {
                Err(_) => SizePoint {
                    nodes,
                    tokens_per_sec: 0.0,
                    scaling_vs_half: None,
                    static_utilization: 0.0,
                    feasible: false,
                },
                Ok(report) => SizePoint {
                    nodes,
                    tokens_per_sec: report.tokens_per_sec,
                    scaling_vs_half: prev.map(|p| report.tokens_per_sec / p),
                    static_utilization: report.run.static_utilization,
                    feasible: true,
                },
            },
        };
        if point.feasible {
            prev = Some(point.tokens_per_sec);
        }
        points.push(point);
    }

    // Largest feasible size still at/above the utilization threshold; if
    // none qualifies, the fastest feasible size.
    let recommended_nodes = points
        .iter()
        .filter(|p| p.feasible && p.static_utilization >= UTILIZATION_THRESHOLD)
        .map(|p| p.nodes)
        .max()
        .or_else(|| {
            points
                .iter()
                .filter(|p| p.feasible)
                .max_by(|a, b| {
                    a.tokens_per_sec
                        .partial_cmp(&b.tokens_per_sec)
                        .expect("throughputs are finite")
                })
                .map(|p| p.nodes)
        });

    Recommendation {
        points,
        recommended_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::ClusterSpec;
    use real_dataflow::algo::RlhfConfig;
    use real_model::ModelSpec;
    use std::time::Duration;

    fn quick_search() -> McmcConfig {
        McmcConfig {
            max_steps: 1_500,
            time_limit: Duration::from_secs(20),
            record_trace: false,
            ..McmcConfig::default()
        }
    }

    fn make(nodes: u32) -> Experiment {
        Experiment::ppo(
            ClusterSpec::h100(nodes),
            ModelSpec::llama3_7b(),
            ModelSpec::llama3_7b().critic(),
            RlhfConfig::instruct_gpt(256),
        )
        .with_quick_profile()
        .with_seed(41)
    }

    #[test]
    fn sweep_produces_monotone_throughput_and_a_recommendation() {
        let rec = recommend(&[1, 2, 4], &quick_search(), 2, make);
        assert_eq!(rec.points.len(), 3);
        assert!(rec.points.iter().all(|p| p.feasible));
        // More nodes, more throughput (weak monotonicity).
        for w in rec.points.windows(2) {
            assert!(w[1].tokens_per_sec > w[0].tokens_per_sec * 0.95);
        }
        // Utilization falls with size.
        assert!(rec.points[2].static_utilization < rec.points[0].static_utilization);
        let n = rec.recommended_nodes.expect("something is feasible");
        assert!([1, 2, 4].contains(&n));
        let rendered = rec.render();
        assert!(rendered.contains("recommendation"));
    }

    #[test]
    fn infeasible_sizes_are_marked() {
        // A 70B actor cannot fit one node at all.
        let rec = recommend(&[1], &quick_search(), 1, |nodes| {
            Experiment::ppo(
                ClusterSpec::h100(nodes),
                ModelSpec::llama3_7b(),
                ModelSpec::llama3_7b().critic(),
                // Oversized batch with one micro-batch ceiling cannot be the
                // issue; instead make memory impossible via a giant context.
                RlhfConfig {
                    prompt_len: 4096,
                    gen_len: 4096,
                    ..RlhfConfig::instruct_gpt(4096)
                },
            )
            .with_quick_profile()
        });
        // Either infeasible (marked) or feasible; in both cases render works.
        let _ = rec.render();
        assert_eq!(rec.points.len(), 1);
    }
}
