//! Experiment reports: throughput metrics over a runtime-engine run.

use real_dataflow::{DataflowGraph, ExecutionPlan};
use real_runtime::RunReport;

/// A completed experiment: the plan that ran, the engine's measurements,
/// and derived throughput numbers.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// The executed plan.
    pub plan: ExecutionPlan,
    /// Raw runtime-engine measurements.
    pub run: RunReport,
    /// Tokens processed per iteration (the workload's largest call).
    pub tokens_per_iter: u64,
    /// Sequences per iteration (the workload's largest call batch).
    pub seqs_per_iter: u64,
    /// Tokens per second (the paper's throughput metric).
    pub tokens_per_sec: f64,
    /// Sequences (samples) per second.
    pub seqs_per_sec: f64,
    /// Total workflow FLOPs per iteration (sum over calls, 2P/6P rule).
    pub flops_per_iter: f64,
}

impl ExperimentReport {
    /// Derives the metrics from a run.
    pub fn new(graph: &DataflowGraph, plan: ExecutionPlan, run: RunReport) -> Self {
        let tokens_per_iter = graph
            .calls()
            .iter()
            .map(|c| c.call_type.total_tokens())
            .max()
            .unwrap_or(0);
        let seqs_per_iter = graph
            .calls()
            .iter()
            .map(|c| c.call_type.batch())
            .max()
            .unwrap_or(0);
        let tokens_per_sec = run.tokens_per_sec(tokens_per_iter);
        let seqs_per_sec = run.seqs_per_sec(seqs_per_iter);
        let flops_per_iter = graph.calls().iter().map(|c| c.approx_flops()).sum();
        Self {
            plan,
            run,
            tokens_per_iter,
            seqs_per_iter,
            tokens_per_sec,
            seqs_per_sec,
            flops_per_iter,
        }
    }

    /// Model FLOPs utilization: workflow FLOPs per second over the
    /// cluster's peak, the standard efficiency metric for LLM systems.
    pub fn mfu(&self, cluster: &real_cluster::ClusterSpec) -> f64 {
        let peak = cluster.gpu.peak_flops_bf16 * f64::from(cluster.total_gpus());
        (self.flops_per_iter / self.run.iter_time) / peak
    }

    /// Renders the plan plus the wall-time breakdown (Tables 2–6 style).
    /// Runs executed under a fault schedule append a degraded-mode
    /// accounting line (injected windows, retries, recoveries, lost work).
    pub fn render(&self, graph: &DataflowGraph) -> String {
        let mut out = format!(
            "{}\n{}\nthroughput: {} ({} seqs/s)\n",
            self.plan.render(graph),
            self.run.render_breakdown(),
            real_util::units::fmt_rate(self.tokens_per_sec),
            self.seqs_per_sec,
        );
        if !self.run.faults.is_empty() {
            out.push_str(&self.run.faults.render_line());
            out.push('\n');
        }
        if !self.run.replan.is_empty() {
            out.push_str(&self.run.replan.render_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::{ClusterSpec, DeviceMesh};
    use real_dataflow::{algo, CallAssignment};
    use real_model::{ModelSpec, ParallelStrategy};
    use real_runtime::{EngineConfig, RuntimeEngine};

    fn run() -> (DataflowGraph, ExperimentReport) {
        let cluster = ClusterSpec::h100(1);
        let actor = ModelSpec::llama3_7b();
        let graph = algo::ppo(&actor, &actor.critic(), &algo::RlhfConfig::instruct_gpt(64));
        let a = CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(1, 8, 1, 8).unwrap(),
        )
        .unwrap();
        let plan = ExecutionPlan::new(&graph, &cluster, vec![a; graph.n_calls()]).unwrap();
        let engine = RuntimeEngine::new(cluster, graph.clone(), EngineConfig::deterministic());
        let report = engine.run(&plan, 2).unwrap();
        let er = ExperimentReport::new(&graph, plan, report);
        (graph, er)
    }

    #[test]
    fn metrics_are_consistent() {
        let (_, r) = run();
        assert_eq!(r.seqs_per_iter, 64);
        assert_eq!(r.tokens_per_iter, 64 * 2048);
        assert!((r.tokens_per_sec / r.seqs_per_sec - 2048.0).abs() < 1e-6);
    }

    #[test]
    fn mfu_is_a_sane_fraction() {
        let (_, r) = run();
        let mfu = r.mfu(&ClusterSpec::h100(1));
        // RLHF iterations are generation-heavy (memory-bound), so MFU is
        // well below pretraining levels but clearly positive.
        assert!(mfu > 0.01 && mfu < 0.6, "mfu {mfu}");
    }

    #[test]
    fn render_contains_plan_and_throughput() {
        let (graph, r) = run();
        let s = r.render(&graph);
        assert!(s.contains("actor_gen"));
        assert!(s.contains("throughput"));
        assert!(s.contains("end2end"));
        // Fault-free runs stay fault-silent.
        assert!(!s.contains("faults:"));
    }

    #[test]
    fn render_appends_fault_line_for_faulted_runs() {
        let cluster = ClusterSpec::h100(1);
        let actor = ModelSpec::llama3_7b();
        let graph = algo::ppo(&actor, &actor.critic(), &algo::RlhfConfig::instruct_gpt(64));
        let a = CallAssignment::new(
            DeviceMesh::full(&cluster),
            ParallelStrategy::new(1, 8, 1, 8).unwrap(),
        )
        .unwrap();
        let plan = ExecutionPlan::new(&graph, &cluster, vec![a; graph.n_calls()]).unwrap();
        let mut cfg = EngineConfig::deterministic();
        cfg.fault_plan = Some(real_sim::FaultPlan::new(7).slowdown(0, 0.0, 5.0, 2.0));
        let engine = RuntimeEngine::new(cluster, graph.clone(), cfg);
        let report = engine.run(&plan, 1).unwrap();
        let er = ExperimentReport::new(&graph, plan, report);
        let s = er.render(&graph);
        assert!(s.contains("faults: 1 injected"), "{s}");
    }
}
