//! # real-rs — ReaL: RLHF training with parameter reallocation, in Rust
//!
//! A faithful systems reproduction of *ReaL: Efficient RLHF Training of
//! Large Language Models with Parameter Reallocation* (MLSys 2025) against
//! a simulated GPU cluster. The crate graph mirrors the paper:
//!
//! | paper component | crate |
//! |---|---|
//! | cluster & device meshes (§4) | [`real_cluster`] |
//! | LLaMA-3 models, 3D parallelism, cost/memory models (§2, Table 1) | [`real_model`] |
//! | dataflow graphs & execution plans (§3–4) | [`real_dataflow`] |
//! | profiler (§5.1) | [`real_profiler`] |
//! | runtime estimator: Algorithm 1 + MaxMem (§5.1) | [`real_estimator`] |
//! | MCMC plan search + pruning + brute force (§5.2, §8.2) | [`real_search`] |
//! | runtime engine: master/model workers, reallocation (§6) | [`real_runtime`] |
//!
//! This crate is the user-facing facade: [`Experiment`] plays the role of
//! the paper's Appendix-B `@auto` decorator — give it a cluster and a
//! workflow, and it profiles, searches, and runs.
//!
//! # Quickstart
//!
//! ```
//! use real_core::prelude::*;
//!
//! // A PPO experiment: 7B actor + 7B critic on one 8-GPU node.
//! let experiment = Experiment::ppo(
//!     ClusterSpec::h100(1),
//!     ModelSpec::llama3_7b(),
//!     ModelSpec::llama3_7b().critic(),
//!     RlhfConfig::instruct_gpt(64),
//! ).with_quick_profile();
//!
//! // Automatic planning (search budget kept tiny for the doctest).
//! let mut search = McmcConfig::default();
//! search.max_steps = 200;
//! let planned = experiment.plan_auto(&search).unwrap();
//! let report = experiment.run(&planned.plan, 2).unwrap();
//! assert!(report.tokens_per_sec > 0.0);
//! ```

pub mod advisor;
pub mod experiment;
pub mod prelude;
pub mod report;
pub mod tenant;

pub use advisor::{recommend, Recommendation, SizePoint};
pub use experiment::{Experiment, PlanFailure, PlannedExperiment, SpecPlannedExperiment};
pub use report::ExperimentReport;
pub use tenant::Tenant;

// Re-export the component crates so downstream users need one dependency.
pub use real_cluster;
pub use real_dataflow;
pub use real_estimator;
pub use real_model;
pub use real_obs;
pub use real_profiler;
pub use real_runtime;
pub use real_search;
pub use real_sim;
pub use real_util;
