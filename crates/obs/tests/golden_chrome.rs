//! Golden-file test: the Chrome export of a small, fully representative
//! run-shaped stream must match the checked-in snapshot byte for byte, and
//! the snapshot itself must parse as valid JSON.
//!
//! Regenerate the snapshot after an intentional exporter change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p real-obs --test golden_chrome
//! ```

use real_obs::{chrome, EventStream, LaneId};

/// A miniature run: one master call span with a flow arrow into a worker
/// GPU span, an instant marker, and a memory counter track — one of every
/// event kind the runtime assembler emits.
fn small_run() -> EventStream {
    let mut s = EventStream::with_capacity(0);
    let gpu = LaneId::gpu(0, 0);
    s.set_lane_name(gpu, "node0", "gpu0");
    s.set_lane_name(LaneId::master(), "master", "actor_gen");
    s.begin(LaneId::master(), "actor_gen#0", "call", 0.0);
    s.flow_start(0, "req:actor_gen", LaneId::master(), 0.0);
    s.begin(gpu, "gen_layer", "compute", 0.5);
    s.end(gpu, 1.5);
    s.instant(gpu, "kv_flush", "memory", 1.75);
    s.flow_end(0, "req:actor_gen", gpu, 2.0);
    s.end(LaneId::master(), 2.0);
    s.counter(0, "mem/node0/gpu0", 0.0, 8.0);
    s.counter(0, "mem/node0/gpu0", 2.0, 6.5);
    s.check_invariants().expect("sample stream is well formed");
    s
}

#[test]
fn chrome_export_matches_golden_snapshot() {
    let exported = chrome::to_chrome_string(&small_run());
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_small.json"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path, format!("{exported}\n")).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden snapshot is checked in");
    assert_eq!(
        exported,
        golden.trim_end(),
        "chrome export diverged from the golden snapshot; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
    let parsed: serde::Value = serde_json::from_str(&golden).unwrap();
    assert!(!parsed.as_array().unwrap().is_empty());
}
