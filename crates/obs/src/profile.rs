//! Phase attribution and the `ProfileReport` behind `real profile`.
//!
//! Turns a raw [`EventStream`] into the paper's evaluation views: Fig. 8
//! phase shares (where every second of makespan went), Fig. 10/11 per-GPU
//! utilization and comm-vs-compute overlap, and the critical-path table
//! from [`crate::critpath`]. The report serializes deterministically (serde
//! JSON, fixed field and row order), renders as human tables, and diffs
//! against a committed baseline for the CI regression gate
//! (`real profile --baseline b.json --check`).
//!
//! # Phase model
//!
//! Every instant of `[0, makespan]` is attributed to exactly one [`Phase`].
//! Phase-bearing spans are the master-lane call spans (categories
//! `call/gen`, `call/train`, `call/inf`), reallocation and transfer spans
//! from the simulator (`realloc`, `transfer`), and retry-backoff windows
//! (`backoff`). Where phases overlap, a fixed precedence picks one —
//! reallocation and transfers over the calls they serve, backoff over the
//! call it stalls — and uncovered time is `idle`. The sweep is exhaustive
//! by construction, so
//!
//! ```text
//! sum(phase seconds) == makespan
//! ```
//!
//! is a conservation invariant the proptests pin down.

use crate::critpath::{reconstruct_spans, CritEntry, CriticalPath, Span, EPS};
use crate::events::EventStream;
use serde::{Deserialize, Serialize};

/// A named slice of the run's makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Parameter-reallocation prologue (`realloc` spans).
    Realloc,
    /// Inter-call data transfer (`transfer` spans).
    Transfer,
    /// Retry backoff after an aborted attempt (`backoff` spans).
    RetryBackoff,
    /// Generation calls (`call/gen`).
    Generation,
    /// Training calls (`call/train`).
    Training,
    /// Inference calls (`call/inf`).
    Inference,
    /// No phase-bearing span active.
    Idle,
}

impl Phase {
    /// Every phase, in attribution-precedence order (highest first); the
    /// order is also the fixed row order of [`ProfileReport::phases`].
    pub const ALL: [Phase; 7] = [
        Phase::Realloc,
        Phase::Transfer,
        Phase::RetryBackoff,
        Phase::Generation,
        Phase::Training,
        Phase::Inference,
        Phase::Idle,
    ];

    /// Stable snake-ish name used in reports and baselines.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Realloc => "realloc",
            Phase::Transfer => "transfer",
            Phase::RetryBackoff => "retry-backoff",
            Phase::Generation => "generation",
            Phase::Training => "training",
            Phase::Inference => "inference",
            Phase::Idle => "idle",
        }
    }

    /// Position in [`Phase::ALL`] (lower = higher precedence).
    fn index(self) -> usize {
        Phase::ALL.iter().position(|&p| p == self).expect("in ALL")
    }
}

/// Maps a span category to its phase, if it bears one. Kernel-level
/// categories (`compute`, `launch`, `*-comm`) return `None`: their time is
/// covered by the enclosing call span.
pub fn phase_of_category(category: &str) -> Option<Phase> {
    match category {
        "realloc" => Some(Phase::Realloc),
        "transfer" => Some(Phase::Transfer),
        "backoff" => Some(Phase::RetryBackoff),
        "call/gen" => Some(Phase::Generation),
        "call/train" => Some(Phase::Training),
        "call/inf" => Some(Phase::Inference),
        _ => None,
    }
}

/// Classifies a call by its conventional name suffix (`actor_gen`,
/// `critic_train`, `reward_inf`, ...) into a phase-bearing span category.
/// Emitters with access to the dataflow graph should prefer the graph's
/// own call type; this is for emitters that only see the master log (e.g.
/// the multi-tenant scheduler).
pub fn call_category_for_name(name: &str) -> &'static str {
    if name.ends_with("_gen") {
        "call/gen"
    } else if name.ends_with("_train") {
        "call/train"
    } else {
        "call/inf"
    }
}

/// One phase's share of the makespan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseShare {
    /// Phase name (see [`Phase::name`]).
    pub phase: String,
    /// Seconds attributed to the phase.
    pub seconds: f64,
    /// `seconds / makespan` (0 when the makespan is 0).
    pub share: f64,
}

/// Attributes every instant of `[0, makespan]` to one phase via a sorted
/// boundary sweep over the phase-bearing spans. Returns one entry per
/// [`Phase`], in `Phase::ALL` order; the seconds sum to the makespan.
pub fn attribute_phases(spans: &[Span], makespan: f64) -> Vec<PhaseShare> {
    // Boundary events: (ts, phase index, +1/-1), clamped to the makespan.
    let mut bounds: Vec<(f64, usize, i32)> = Vec::new();
    for s in spans {
        if let Some(p) = phase_of_category(&s.category) {
            let (a, b) = (s.start.clamp(0.0, makespan), s.end.clamp(0.0, makespan));
            if b - a > 0.0 {
                bounds.push((a, p.index(), 1));
                bounds.push((b, p.index(), -1));
            }
        }
    }
    bounds.sort_by(|x, y| {
        x.0.partial_cmp(&y.0)
            .expect("span times are finite")
            .then(x.1.cmp(&y.1))
            .then(x.2.cmp(&y.2))
    });
    let mut active = [0i64; Phase::ALL.len()];
    let mut seconds = [0.0f64; Phase::ALL.len()];
    let mut prev = 0.0;
    let credit = |active: &[i64], from: f64, to: f64, secs: &mut [f64]| {
        if to <= from {
            return;
        }
        let winner = Phase::ALL
            .iter()
            .position(|p| *p != Phase::Idle && active[p.index()] > 0)
            .unwrap_or(Phase::Idle.index());
        secs[winner] += to - from;
    };
    for (ts, idx, delta) in bounds {
        credit(&active, prev, ts, &mut seconds);
        prev = prev.max(ts);
        active[idx] += i64::from(delta);
    }
    credit(&active, prev, makespan, &mut seconds);
    Phase::ALL
        .iter()
        .map(|p| PhaseShare {
            phase: p.name().to_string(),
            seconds: seconds[p.index()],
            share: if makespan > 0.0 {
                seconds[p.index()] / makespan
            } else {
                0.0
            },
        })
        .collect()
}

/// Sub-row names of the generation breakdown, in attribution-precedence
/// order (highest first); also the fixed row order of
/// [`ProfileReport::gen_breakdown`].
pub const GEN_SUBROWS: [&str; 4] = ["gen/draft", "gen/verify", "gen/fallback", "gen/other"];

/// Classifies a kernel-span name into a generation sub-row index
/// (position in [`GEN_SUBROWS`]), if it is one of the speculative-decoding
/// span labels the runtime emits.
fn gen_subrow(name: &str) -> Option<usize> {
    match name {
        "spec_draft_prefill" | "spec_draft_decode" => Some(0),
        "spec_verify_fwd" => Some(1),
        "spec_fallback_decode" => Some(2),
        _ => None,
    }
}

/// Splits the `generation` phase into `gen/draft`, `gen/verify`,
/// `gen/fallback`, and `gen/other` sub-rows when speculative decoding is
/// active — i.e. when any speculative kernel span appears in `spans`.
/// Returns an empty vector otherwise, so non-speculative reports are
/// untouched.
///
/// The sweep reproduces [`attribute_phases`]'s precedence exactly and, on
/// every instant attributed to [`Phase::Generation`], picks the active
/// sub-span of highest precedence (draft over verify over fallback), with
/// `gen/other` absorbing generation time outside any speculative span
/// (prefill, sampling head, plain decode of other calls). The sub-row
/// seconds therefore sum to the `generation` row of [`attribute_phases`]
/// bit-exactly — the conservation invariant the tests pin.
pub fn attribute_generation(spans: &[Span], makespan: f64) -> Vec<PhaseShare> {
    if !spans.iter().any(|s| gen_subrow(&s.name).is_some()) {
        return Vec::new();
    }
    // Boundary events: phase spans tagged `[0, ALL)`, speculative sub-spans
    // tagged `ALL + subrow`.
    const SUB_BASE: usize = Phase::ALL.len();
    let mut bounds: Vec<(f64, usize, i32)> = Vec::new();
    for s in spans {
        let tag = if let Some(p) = phase_of_category(&s.category) {
            Some(p.index())
        } else {
            gen_subrow(&s.name).map(|j| SUB_BASE + j)
        };
        if let Some(tag) = tag {
            let (a, b) = (s.start.clamp(0.0, makespan), s.end.clamp(0.0, makespan));
            if b - a > 0.0 {
                bounds.push((a, tag, 1));
                bounds.push((b, tag, -1));
            }
        }
    }
    bounds.sort_by(|x, y| {
        x.0.partial_cmp(&y.0)
            .expect("span times are finite")
            .then(x.1.cmp(&y.1))
            .then(x.2.cmp(&y.2))
    });
    let mut active = [0i64; SUB_BASE + GEN_SUBROWS.len()];
    let mut seconds = [0.0f64; GEN_SUBROWS.len()];
    let mut prev = 0.0;
    let credit = |active: &[i64], from: f64, to: f64, secs: &mut [f64]| {
        if to <= from {
            return;
        }
        let winner = Phase::ALL
            .iter()
            .position(|p| *p != Phase::Idle && active[p.index()] > 0)
            .unwrap_or(Phase::Idle.index());
        if winner != Phase::Generation.index() {
            return;
        }
        let sub = (0..GEN_SUBROWS.len() - 1)
            .find(|j| active[SUB_BASE + j] > 0)
            .unwrap_or(GEN_SUBROWS.len() - 1);
        secs[sub] += to - from;
    };
    for (ts, idx, delta) in bounds {
        credit(&active, prev, ts, &mut seconds);
        prev = prev.max(ts);
        active[idx] += i64::from(delta);
    }
    credit(&active, prev, makespan, &mut seconds);
    GEN_SUBROWS
        .iter()
        .zip(seconds)
        .map(|(name, secs)| PhaseShare {
            phase: (*name).to_string(),
            seconds: secs,
            share: if makespan > 0.0 { secs / makespan } else { 0.0 },
        })
        .collect()
}

/// Wall seconds during which spans of phase `a` and spans of phase `b`
/// were simultaneously active anywhere in the stream — the measured
/// generation/training overlap of an async off-policy run, for example.
/// Unlike [`attribute_phases`] (which tiles the makespan, so precedence
/// hides concurrency), this reports the raw intersection of the two
/// phases' active-time unions.
///
/// # Examples
///
/// ```
/// use real_obs::{EventStream, LaneId};
/// use real_obs::profile::{phase_overlap, Phase};
///
/// let mut s = EventStream::with_capacity(0);
/// let m = LaneId::master();
/// // Training [0, 8] overlaps next iteration's generation [5, 9].
/// s.span(m, "actor_train#0", "call/train", 0.0, 8.0);
/// s.span(m, "actor_gen#1", "call/gen", 5.0, 9.0);
/// let secs = phase_overlap(&s, Phase::Generation, Phase::Training);
/// assert!((secs - 3.0).abs() < 1e-9);
/// ```
pub fn phase_overlap(stream: &EventStream, a: Phase, b: Phase) -> f64 {
    let spans = reconstruct_spans(stream);
    let of = |phase: Phase| {
        merge_intervals(
            spans
                .iter()
                .filter(|s| phase_of_category(&s.category) == Some(phase))
                .map(|s| (s.start, s.end))
                .collect(),
        )
    };
    intersection_len(&of(a), &of(b))
}

/// Kernel-level categories the simulator records on GPU lanes.
const SIM_CATEGORIES: [&str; 7] = [
    "compute", "launch", "tp-comm", "pp-comm", "dp-comm", "realloc", "transfer",
];

const COMPUTE_CATEGORIES: [&str; 2] = ["compute", "launch"];

/// Utilization and idle-gap statistics for one GPU lane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuStat {
    /// Lane name (`node0/gpu3`).
    pub lane: String,
    /// Seconds with at least one kernel span active.
    pub busy_seconds: f64,
    /// `makespan - busy_seconds`.
    pub idle_seconds: f64,
    /// `busy_seconds / makespan`.
    pub utilization: f64,
    /// Number of idle gaps (> [`EPS`]) within `[0, makespan]`.
    pub gaps: u64,
    /// Longest single idle gap.
    pub longest_gap_seconds: f64,
}

/// Cluster-wide comm-vs-compute overlap, in GPU-seconds summed over lanes.
///
/// The four buckets tile each GPU lane's `[0, makespan]`, so they sum to
/// `n_gpu_lanes * makespan`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OverlapStats {
    /// Compute (or launch) active, no communication.
    pub compute_only_seconds: f64,
    /// Communication (TP/PP/DP, realloc, transfer) active, no compute.
    pub comm_only_seconds: f64,
    /// Both active at once (communication hidden behind compute).
    pub overlap_seconds: f64,
    /// Neither active (idle).
    pub neither_seconds: f64,
}

/// Merges `(start, end)` intervals into a disjoint sorted union.
fn merge_intervals(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite")
            .then(a.1.partial_cmp(&b.1).expect("finite"))
    });
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (a, b) in iv {
        if b <= a {
            continue;
        }
        match out.last_mut() {
            Some(last) if a <= last.1 + EPS => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

fn union_len(iv: &[(f64, f64)]) -> f64 {
    iv.iter().map(|(a, b)| b - a).sum()
}

/// Seconds both unions are active at once.
fn intersection_len(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j, mut total) = (0, 0, 0.0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Estimator-vs-simulated wall time for one function call (Fig. 12).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallGap {
    /// Call name (e.g. `actor_gen`).
    pub call: String,
    /// Algorithm-1 estimate for the assigned placement, seconds.
    pub estimated_secs: f64,
    /// Mean simulated wall time across iterations, seconds.
    pub simulated_secs: f64,
    /// `(simulated - estimated) / estimated`, in percent.
    pub gap_pct: f64,
}

impl CallGap {
    /// Builds a gap entry, guarding a zero estimate.
    pub fn new(call: impl Into<String>, estimated_secs: f64, simulated_secs: f64) -> Self {
        let gap_pct = if estimated_secs > 0.0 {
            (simulated_secs - estimated_secs) / estimated_secs * 100.0
        } else {
            0.0
        };
        Self {
            call: call.into(),
            estimated_secs,
            simulated_secs,
            gap_pct,
        }
    }
}

/// A named p50/p95/p99 summary (idle gaps, sched stretch, queue waits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PercentileSummary {
    /// What was summarized (e.g. `gpu-idle-gap-seconds`).
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl PercentileSummary {
    /// Summarizes a sample set (zeros when empty).
    pub fn from_values(name: impl Into<String>, values: &[f64]) -> Self {
        let q = |p| real_util::stats::percentile(values, p).unwrap_or(0.0);
        Self {
            name: name.into(),
            count: values.len() as u64,
            p50: q(50.0),
            p95: q(95.0),
            p99: q(99.0),
            max: values.iter().fold(0.0f64, |m, &v| m.max(v)),
        }
    }
}

/// The complete output of `real profile`: every view the paper's evaluation
/// figures need, serializable as a committed baseline.
///
/// `Serialize`/`Deserialize` are hand-written (not derived) so that
/// [`ProfileReport::gen_breakdown`] — which only exists for speculative
/// runs — is omitted from the JSON when empty. Non-speculative reports
/// therefore serialize byte-identically to the pre-speculation format, and
/// baselines committed before the field existed still deserialize.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Virtual makespan of the run.
    pub makespan: f64,
    /// Phase attribution (sums to `makespan`), in [`Phase::ALL`] order.
    pub phases: Vec<PhaseShare>,
    /// Top-k critical-path entries, largest gating time first.
    pub critical_path: Vec<CritEntry>,
    /// Critical-path seconds spent inside spans.
    pub crit_span_seconds: f64,
    /// Critical-path seconds spent waiting (no span running anywhere).
    pub crit_wait_seconds: f64,
    /// Per-GPU utilization, lane order.
    pub gpus: Vec<GpuStat>,
    /// Cluster-wide comm-vs-compute overlap.
    pub overlap: OverlapStats,
    /// Estimator-vs-simulated per-call gaps (empty in trace-only mode).
    pub estimator_gap: Vec<CallGap>,
    /// Distribution summaries (GPU idle gaps; sched stretch when present).
    pub percentiles: Vec<PercentileSummary>,
    /// Speculative-decoding split of the `generation` phase, in
    /// [`GEN_SUBROWS`] order; empty when the run decoded plainly (see
    /// [`attribute_generation`]).
    pub gen_breakdown: Vec<PhaseShare>,
}

impl Serialize for ProfileReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("makespan".to_string(), self.makespan.to_value()),
            ("phases".to_string(), self.phases.to_value()),
            ("critical_path".to_string(), self.critical_path.to_value()),
            (
                "crit_span_seconds".to_string(),
                self.crit_span_seconds.to_value(),
            ),
            (
                "crit_wait_seconds".to_string(),
                self.crit_wait_seconds.to_value(),
            ),
            ("gpus".to_string(), self.gpus.to_value()),
            ("overlap".to_string(), self.overlap.to_value()),
            ("estimator_gap".to_string(), self.estimator_gap.to_value()),
            ("percentiles".to_string(), self.percentiles.to_value()),
        ];
        if !self.gen_breakdown.is_empty() {
            fields.push(("gen_breakdown".to_string(), self.gen_breakdown.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for ProfileReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: Deserialize>(v: &serde::Value, key: &str) -> Result<T, serde::Error> {
            let f = v
                .get(key)
                .ok_or_else(|| serde::Error::custom(format!("missing field `{key}`")))?;
            T::from_value(f)
        }
        Ok(Self {
            makespan: field(v, "makespan")?,
            phases: field(v, "phases")?,
            critical_path: field(v, "critical_path")?,
            crit_span_seconds: field(v, "crit_span_seconds")?,
            crit_wait_seconds: field(v, "crit_wait_seconds")?,
            gpus: field(v, "gpus")?,
            overlap: field(v, "overlap")?,
            estimator_gap: field(v, "estimator_gap")?,
            percentiles: field(v, "percentiles")?,
            gen_breakdown: match v.get("gen_breakdown") {
                Some(f) => Deserialize::from_value(f)?,
                None => Vec::new(),
            },
        })
    }
}

impl ProfileReport {
    /// Builds the stream-derivable part of the report (everything except
    /// [`ProfileReport::estimator_gap`], which needs the estimator and is
    /// filled by the caller when the run was planned in-process).
    pub fn from_stream(stream: &EventStream, top_k: usize) -> Self {
        let spans = reconstruct_spans(stream);
        let makespan = crate::critpath::makespan(&spans);
        let cp = CriticalPath::extract(&spans, makespan);
        let critical_path = cp.top_spans(&spans, top_k);
        let phases = attribute_phases(&spans, makespan);
        let gen_breakdown = attribute_generation(&spans, makespan);

        // Lane names for the per-GPU views.
        let lane_name = |lane: &crate::events::LaneId| -> String {
            let proc = stream
                .process_names()
                .find(|&(pid, _)| pid == lane.pid)
                .map(|(_, n)| n.to_string())
                .unwrap_or_else(|| format!("pid{}", lane.pid));
            let thread = stream
                .thread_names()
                .find(|&(pid, tid, _)| pid == lane.pid && tid == lane.tid)
                .map(|(_, _, n)| n.to_string())
                .unwrap_or_else(|| format!("tid{}", lane.tid));
            format!("{proc}/{thread}")
        };

        // Group kernel spans by lane: (compute intervals, comm intervals).
        type LaneIntervals = (Vec<(f64, f64)>, Vec<(f64, f64)>);
        let mut by_lane: std::collections::BTreeMap<crate::events::LaneId, LaneIntervals> =
            std::collections::BTreeMap::new();
        for s in &spans {
            if !SIM_CATEGORIES.contains(&s.category.as_str()) {
                continue;
            }
            let entry = by_lane.entry(s.lane).or_default();
            if COMPUTE_CATEGORIES.contains(&s.category.as_str()) {
                entry.0.push((s.start, s.end));
            } else {
                entry.1.push((s.start, s.end));
            }
        }

        let mut gpus = Vec::new();
        let mut overlap = OverlapStats::default();
        let mut gap_samples: Vec<f64> = Vec::new();
        for (lane, (compute, comm)) in by_lane {
            let compute = merge_intervals(compute);
            let comm = merge_intervals(comm);
            let busy = merge_intervals(compute.iter().chain(comm.iter()).copied().collect());

            let compute_len = union_len(&compute);
            let comm_len = union_len(&comm);
            let both = intersection_len(&compute, &comm);
            overlap.compute_only_seconds += compute_len - both;
            overlap.comm_only_seconds += comm_len - both;
            overlap.overlap_seconds += both;
            overlap.neither_seconds += makespan - union_len(&busy);

            // Idle gaps within [0, makespan], including lead-in and tail.
            let mut gaps = 0u64;
            let mut longest = 0.0f64;
            let mut cursor = 0.0;
            for &(a, b) in busy.iter().chain(std::iter::once(&(makespan, makespan))) {
                let gap = a.min(makespan) - cursor;
                if gap > EPS {
                    gaps += 1;
                    longest = longest.max(gap);
                    gap_samples.push(gap);
                }
                cursor = cursor.max(b.min(makespan));
            }
            let busy_seconds = union_len(&busy);
            gpus.push(GpuStat {
                lane: lane_name(&lane),
                busy_seconds,
                idle_seconds: makespan - busy_seconds,
                utilization: if makespan > 0.0 {
                    busy_seconds / makespan
                } else {
                    0.0
                },
                gaps,
                longest_gap_seconds: longest,
            });
        }

        Self {
            makespan,
            phases,
            critical_path,
            crit_span_seconds: cp.span_seconds,
            crit_wait_seconds: cp.wait_seconds,
            gpus,
            overlap,
            estimator_gap: Vec::new(),
            percentiles: vec![PercentileSummary::from_values(
                "gpu-idle-gap-seconds",
                &gap_samples,
            )],
            gen_breakdown,
        }
    }

    /// Fraction of the makespan attributed to non-idle phases.
    pub fn attributed_fraction(&self) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.phase != "idle")
            .map(|p| p.share)
            .sum()
    }

    /// Renders the human-readable profile.
    pub fn render(&self) -> String {
        let mut out = format!("makespan: {:.2}s\n\n", self.makespan);

        let mut t = real_util::Table::new(vec!["phase", "seconds", "share"]);
        for p in &self.phases {
            t.row(vec![
                p.phase.clone(),
                format!("{:.2}", p.seconds),
                format!("{:.1}%", p.share * 100.0),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "attributed to non-idle phases: {:.1}%\n\n",
            self.attributed_fraction() * 100.0
        ));

        if !self.gen_breakdown.is_empty() {
            let mut t = real_util::Table::new(vec!["generation sub-phase", "seconds", "share"]);
            for p in &self.gen_breakdown {
                t.row(vec![
                    p.phase.clone(),
                    format!("{:.2}", p.seconds),
                    format!("{:.1}%", p.share * 100.0),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }

        let mut t = real_util::Table::new(vec!["critical-path span", "category", "seconds", "n"]);
        for e in &self.critical_path {
            t.row(vec![
                e.name.clone(),
                e.category.clone(),
                format!("{:.2}", e.seconds),
                e.count.to_string(),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "critical path: {:.2}s in spans + {:.2}s waiting\n\n",
            self.crit_span_seconds, self.crit_wait_seconds
        ));

        if !self.gpus.is_empty() {
            let mut t =
                real_util::Table::new(vec!["gpu", "busy (s)", "util", "gaps", "longest gap (s)"]);
            for g in &self.gpus {
                t.row(vec![
                    g.lane.clone(),
                    format!("{:.2}", g.busy_seconds),
                    format!("{:.1}%", g.utilization * 100.0),
                    g.gaps.to_string(),
                    format!("{:.2}", g.longest_gap_seconds),
                ]);
            }
            out.push_str(&t.render());
            out.push_str(&format!(
                "overlap: {:.2} GPU-s compute-only, {:.2} comm-only, \
                 {:.2} overlapped, {:.2} idle\n\n",
                self.overlap.compute_only_seconds,
                self.overlap.comm_only_seconds,
                self.overlap.overlap_seconds,
                self.overlap.neither_seconds,
            ));
        }

        if !self.estimator_gap.is_empty() {
            let mut t =
                real_util::Table::new(vec!["call", "estimated (s)", "simulated (s)", "gap"]);
            for g in &self.estimator_gap {
                t.row(vec![
                    g.call.clone(),
                    format!("{:.2}", g.estimated_secs),
                    format!("{:.2}", g.simulated_secs),
                    format!("{:+.1}%", g.gap_pct),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }

        let mut t = real_util::Table::new(vec!["distribution", "n", "p50", "p95", "p99", "max"]);
        for p in &self.percentiles {
            t.row(vec![
                p.name.clone(),
                p.count.to_string(),
                format!("{:.3}", p.p50),
                format!("{:.3}", p.p95),
                format!("{:.3}", p.p99),
                format!("{:.3}", p.max),
            ]);
        }
        out.push_str(&t.render());
        out
    }

    /// Diffs this report against a committed baseline. Returns one message
    /// per violation (empty = within tolerance): makespan relative drift,
    /// per-phase share drift (absolute percentage points), and
    /// critical-path composition drift (per-category share of makespan).
    pub fn check_against(&self, baseline: &ProfileReport, tolerance_pct: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if baseline.makespan > 0.0 {
            let drift = (self.makespan - baseline.makespan) / baseline.makespan * 100.0;
            if drift.abs() > tolerance_pct {
                violations.push(format!(
                    "makespan drifted {drift:+.1}% ({:.2}s -> {:.2}s; tolerance {tolerance_pct}%)",
                    baseline.makespan, self.makespan
                ));
            }
        }
        for base in &baseline.phases {
            let cur = self
                .phases
                .iter()
                .find(|p| p.phase == base.phase)
                .map_or(0.0, |p| p.share);
            let drift_pp = (cur - base.share) * 100.0;
            if drift_pp.abs() > tolerance_pct {
                violations.push(format!(
                    "phase `{}` share drifted {drift_pp:+.1}pp ({:.1}% -> {:.1}%; tolerance {tolerance_pct}pp)",
                    base.phase,
                    base.share * 100.0,
                    cur * 100.0,
                ));
            }
        }
        for base in &baseline.gen_breakdown {
            let cur = self
                .gen_breakdown
                .iter()
                .find(|p| p.phase == base.phase)
                .map_or(0.0, |p| p.share);
            let drift_pp = (cur - base.share) * 100.0;
            if drift_pp.abs() > tolerance_pct {
                violations.push(format!(
                    "generation sub-phase `{}` share drifted {drift_pp:+.1}pp ({:.1}% -> {:.1}%; tolerance {tolerance_pct}pp)",
                    base.phase,
                    base.share * 100.0,
                    cur * 100.0,
                ));
            }
        }
        if baseline.gen_breakdown.is_empty() {
            for cur in &self.gen_breakdown {
                if cur.share * 100.0 > tolerance_pct {
                    violations.push(format!(
                        "generation sub-phase `{}` is new at {:.1}% of makespan \
                         (baseline was non-speculative; tolerance {tolerance_pct}pp)",
                        cur.phase,
                        cur.share * 100.0,
                    ));
                }
            }
        }
        // Critical-path composition: per-category share of the makespan.
        let comp = |r: &ProfileReport| -> std::collections::BTreeMap<String, f64> {
            let mut m = std::collections::BTreeMap::new();
            if r.makespan > 0.0 {
                for e in &r.critical_path {
                    *m.entry(e.category.clone()).or_insert(0.0) += e.seconds / r.makespan;
                }
            }
            m
        };
        let (base_comp, cur_comp) = (comp(baseline), comp(self));
        for (category, &base_share) in &base_comp {
            let cur_share = cur_comp.get(category).copied().unwrap_or(0.0);
            let drift_pp = (cur_share - base_share) * 100.0;
            if drift_pp.abs() > tolerance_pct {
                violations.push(format!(
                    "critical-path category `{category}` share drifted {drift_pp:+.1}pp \
                     ({:.1}% -> {:.1}%; tolerance {tolerance_pct}pp)",
                    base_share * 100.0,
                    cur_share * 100.0,
                ));
            }
        }
        for (category, &cur_share) in &cur_comp {
            if !base_comp.contains_key(category) && cur_share * 100.0 > tolerance_pct {
                violations.push(format!(
                    "critical-path category `{category}` is new at {:.1}% of makespan \
                     (tolerance {tolerance_pct}pp)",
                    cur_share * 100.0,
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::LaneId;

    fn stream() -> EventStream {
        let mut s = EventStream::with_capacity(0);
        let master = LaneId::master();
        let gpu = LaneId::gpu(0, 0);
        s.set_lane_name(gpu, "node0", "gpu0");
        // Generation [0, 4], realloc [4, 5], training [5, 10].
        s.span(master, "actor_gen#0", "call/gen", 0.0, 4.0);
        s.span(gpu, "gen_kernel", "compute", 0.0, 3.5);
        s.span(gpu, "switch", "realloc", 4.0, 5.0);
        s.span(master, "actor_train#0", "call/train", 5.0, 10.0);
        s.span(gpu, "train_kernel", "compute", 5.0, 9.0);
        s.span(gpu, "grad_allreduce", "dp-comm", 8.5, 9.5);
        s
    }

    #[test]
    fn phases_conserve_makespan() {
        let spans = reconstruct_spans(&stream());
        let phases = attribute_phases(&spans, 10.0);
        let total: f64 = phases.iter().map(|p| p.seconds).sum();
        assert!((total - 10.0).abs() < 1e-9, "{total}");
        let get = |n: &str| phases.iter().find(|p| p.phase == n).unwrap().seconds;
        assert!((get("generation") - 4.0).abs() < 1e-9);
        assert!((get("realloc") - 1.0).abs() < 1e-9);
        assert!((get("training") - 5.0).abs() < 1e-9);
        assert!((get("idle")).abs() < 1e-9);
    }

    #[test]
    fn phase_overlap_intersects_phase_unions() {
        let mut s = EventStream::with_capacity(0);
        let m = LaneId::master();
        s.span(m, "actor_train#0", "call/train", 0.0, 8.0);
        s.span(m, "actor_gen#1", "call/gen", 5.0, 9.0);
        s.span(m, "actor_gen#2", "call/gen", 7.0, 12.0); // merges with #1
        assert!((phase_overlap(&s, Phase::Generation, Phase::Training) - 3.0).abs() < 1e-9);
        // Symmetric, and zero against a phase with no spans.
        assert!((phase_overlap(&s, Phase::Training, Phase::Generation) - 3.0).abs() < 1e-9);
        assert_eq!(phase_overlap(&s, Phase::Generation, Phase::Realloc), 0.0);
    }

    #[test]
    fn realloc_takes_precedence_over_calls() {
        let mut s = EventStream::with_capacity(0);
        s.span(LaneId::master(), "gen#0", "call/gen", 0.0, 10.0);
        s.span(LaneId::gpu(0, 0), "switch", "realloc", 3.0, 5.0);
        let phases = attribute_phases(&reconstruct_spans(&s), 10.0);
        let get = |n: &str| phases.iter().find(|p| p.phase == n).unwrap().seconds;
        assert!((get("generation") - 8.0).abs() < 1e-9);
        assert!((get("realloc") - 2.0).abs() < 1e-9);
    }

    #[test]
    fn backoff_takes_precedence_over_its_enclosing_call() {
        let mut s = EventStream::with_capacity(0);
        let m = LaneId::master();
        s.begin(m, "gen#0", "call/gen", 0.0);
        s.span(m, "backoff", "backoff", 4.0, 6.0);
        s.end(m, 10.0);
        let phases = attribute_phases(&reconstruct_spans(&s), 10.0);
        let get = |n: &str| phases.iter().find(|p| p.phase == n).unwrap().seconds;
        assert!((get("retry-backoff") - 2.0).abs() < 1e-9);
        assert!((get("generation") - 8.0).abs() < 1e-9);
    }

    #[test]
    fn uncovered_time_is_idle() {
        let mut s = EventStream::with_capacity(0);
        s.span(LaneId::master(), "gen#0", "call/gen", 2.0, 6.0);
        let phases = attribute_phases(&reconstruct_spans(&s), 10.0);
        let get = |n: &str| phases.iter().find(|p| p.phase == n).unwrap().seconds;
        assert!((get("idle") - 6.0).abs() < 1e-9);
        assert!((get("generation") - 4.0).abs() < 1e-9);
    }

    #[test]
    fn report_covers_gpus_overlap_and_critical_path() {
        let r = ProfileReport::from_stream(&stream(), 10);
        assert!((r.makespan - 10.0).abs() < 1e-9);
        assert_eq!(r.gpus.len(), 1);
        assert_eq!(r.gpus[0].lane, "node0/gpu0");
        // Busy union: [0,3.5] ∪ [4,5] ∪ [5,9.5] = 9.0s, 3 gaps? lead gap
        // none (starts at 0), [3.5,4] and [9.5,10].
        assert!((r.gpus[0].busy_seconds - 9.0).abs() < 1e-9);
        assert_eq!(r.gpus[0].gaps, 2);
        // dp-comm [8.5,9.5] overlaps compute [5,9] for 0.5s.
        assert!((r.overlap.overlap_seconds - 0.5).abs() < 1e-9);
        assert!((r.overlap.comm_only_seconds - 1.5).abs() < 1e-9);
        // Phase conservation survives the full pipeline.
        let total: f64 = r.phases.iter().map(|p| p.seconds).sum();
        assert!((total - r.makespan).abs() < 1e-9);
        // Critical path ≤ makespan and the top spans are named.
        assert!(r.crit_span_seconds + r.crit_wait_seconds <= r.makespan + 1e-9);
        assert!(!r.critical_path.is_empty());
        let rendered = r.render();
        assert!(rendered.contains("generation"));
        assert!(rendered.contains("critical path"));
        assert!(rendered.contains("node0/gpu0"));
    }

    #[test]
    fn check_against_flags_makespan_and_share_drift() {
        let base = ProfileReport::from_stream(&stream(), 10);
        assert!(base.check_against(&base, 1.0).is_empty());

        // 20% slower run: makespan and phase shares both drift.
        let mut slow = stream();
        slow.span(LaneId::master(), "actor_train#1", "call/train", 10.0, 12.0);
        let cur = ProfileReport::from_stream(&slow, 10);
        let violations = cur.check_against(&base, 10.0);
        assert!(
            violations.iter().any(|v| v.contains("makespan")),
            "{violations:?}"
        );
    }

    #[test]
    fn report_json_roundtrips() {
        let r = ProfileReport::from_stream(&stream(), 10);
        let json = serde_json::to_string(&r).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        // Serialization is deterministic: same stream, same bytes.
        let again = serde_json::to_string(&ProfileReport::from_stream(&stream(), 10)).unwrap();
        assert_eq!(json, again);
    }

    /// `stream()` plus speculative-decoding kernel spans on a second GPU
    /// lane, all within the generation call `[0, 4]` except a fallback span
    /// that spills past it into the realloc window.
    fn spec_stream() -> EventStream {
        let mut s = stream();
        let draft = LaneId::gpu(1, 0);
        s.set_lane_name(draft, "node1", "gpu0");
        s.span(draft, "spec_draft_prefill", "compute", 0.2, 0.6);
        s.span(draft, "spec_draft_decode", "compute", 0.6, 2.0);
        // Verify overlaps the draft tail [1.8, 2.0]: draft takes precedence.
        s.span(LaneId::gpu(0, 0), "spec_verify_fwd", "compute", 1.8, 2.5);
        // Fallback spills past the generation call into realloc [4, 5]:
        // only [3.8, 4.0] counts.
        s.span(
            LaneId::gpu(0, 0),
            "spec_fallback_decode",
            "compute",
            3.8,
            4.5,
        );
        s
    }

    #[test]
    fn gen_breakdown_tiles_the_generation_phase() {
        let spans = reconstruct_spans(&spec_stream());
        let phases = attribute_phases(&spans, 10.0);
        let breakdown = attribute_generation(&spans, 10.0);
        let gen = phases
            .iter()
            .find(|p| p.phase == "generation")
            .unwrap()
            .seconds;
        let total: f64 = breakdown.iter().map(|p| p.seconds).sum();
        assert!(
            (total - gen).abs() < 1e-9,
            "sub-rows {total} vs phase {gen}"
        );
        let get = |n: &str| breakdown.iter().find(|p| p.phase == n).unwrap().seconds;
        // Draft union [0.2, 2.0]; verify loses the [1.8, 2.0] overlap;
        // fallback clipped at the call boundary; other is the remainder.
        assert!((get("gen/draft") - 1.8).abs() < 1e-9);
        assert!((get("gen/verify") - 0.5).abs() < 1e-9);
        assert!((get("gen/fallback") - 0.2).abs() < 1e-9);
        assert!((get("gen/other") - 1.5).abs() < 1e-9);
    }

    #[test]
    fn plain_stream_yields_no_breakdown_and_legacy_json() {
        let r = ProfileReport::from_stream(&stream(), 10);
        assert!(r.gen_breakdown.is_empty());
        let json = serde_json::to_string(&r).unwrap();
        // Byte-compatible with reports (and committed baselines) from
        // before the field existed: the key is simply absent...
        assert!(!json.contains("gen_breakdown"), "{json}");
        // ...and such legacy JSON still deserializes, with an empty split.
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert!(back.gen_breakdown.is_empty());
        assert_eq!(r, back);
    }

    #[test]
    fn speculative_report_roundtrips_renders_and_diffs_breakdown() {
        let r = ProfileReport::from_stream(&spec_stream(), 10);
        assert_eq!(r.gen_breakdown.len(), GEN_SUBROWS.len());
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("gen_breakdown"));
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        let rendered = r.render();
        assert!(rendered.contains("gen/draft"));
        assert!(rendered.contains("gen/verify"));
        // Self-diff is clean; against a non-speculative baseline the new
        // sub-rows are flagged.
        assert!(r.check_against(&r, 1.0).is_empty());
        let plain = ProfileReport::from_stream(&stream(), 10);
        let violations = r.check_against(&plain, 1.0);
        assert!(
            violations.iter().any(|v| v.contains("gen/draft")),
            "{violations:?}"
        );
    }

    #[test]
    fn call_name_classification_follows_suffix_convention() {
        assert_eq!(call_category_for_name("actor_gen"), "call/gen");
        assert_eq!(call_category_for_name("critic_train"), "call/train");
        assert_eq!(call_category_for_name("reward_inf"), "call/inf");
        assert_eq!(call_category_for_name("ref"), "call/inf");
    }
}
