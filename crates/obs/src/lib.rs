//! Unified observability layer for `real-rs`.
//!
//! Half of the ReaL paper's evaluation *is* observability: Fig. 10 kernel
//! traces, Fig. 11 GPU-time splits, Fig. 12 estimator-vs-runtime error,
//! Fig. 13 search-progress curves. This crate provides the two substrates
//! those figures (and every later performance PR) are built on:
//!
//! - [`metrics`] — a deterministic registry of counters, gauges, fixed-bucket
//!   histograms, and bounded time series keyed by `(name, labels)`,
//!   snapshotable to JSON via serde. Iteration order is fully deterministic
//!   (BTreeMap + sorted labels), so snapshots diff cleanly across runs.
//! - [`events`] — a span-based structured event stream over the *virtual*
//!   clock: nested begin/end spans, instant events, counter tracks, and flow
//!   events linking a master `Request` dispatch to its worker `Response`.
//! - [`chrome`] — a serde_json-backed Chrome/Perfetto trace exporter (and
//!   importer, for offline analysis of saved traces) for
//!   [`events::EventStream`], with metadata records naming lanes
//!   `node{n}/gpu{g}`.
//! - [`critpath`] — span reconstruction and critical-path extraction: which
//!   chain of spans actually gated the makespan.
//! - [`profile`] — phase attribution (generation/training/inference/
//!   realloc/transfer/backoff/idle, conserving the makespan), per-GPU
//!   utilization, comm-vs-compute overlap, and the [`profile::ProfileReport`]
//!   behind `real profile` and its CI regression gate.
//!
//! Producers upstream: `real-sim` (per-GPU busy spans, per-link utilization
//! counters), `real-runtime` (function-call spans, micro-batches, realloc
//! broadcasts, transfers, per-GPU memory tracks), `real-search` (MCMC chain
//! telemetry), `real-estimator` (Algorithm-1 queue events).

pub mod chrome;
pub mod critpath;
pub mod events;
pub mod metrics;
pub mod profile;

pub use chrome::{from_chrome_value, to_chrome_value};
pub use critpath::{CritEntry, CriticalPath, Span};
pub use events::{EventStream, LaneId, StreamEvent};
pub use metrics::{Histogram, MergeError, MetricValue, MetricsRegistry, MetricsSnapshot, Series};
pub use profile::{phase_overlap, Phase, PhaseShare, ProfileReport};
