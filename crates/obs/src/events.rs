//! Span-based structured event stream over the virtual clock.
//!
//! An [`EventStream`] is an append-only, bounded log of observability events
//! positioned on the simulator's virtual timeline: nested begin/end spans,
//! instant events, counter samples, and flow arrows that link a master
//! `Request` dispatch to the worker `Response` that completes it. Events are
//! placed on *lanes* ([`LaneId`]), which map one-to-one onto Chrome trace
//! `pid`/`tid` rows — by convention `pid = node`, `tid = gpu`, with a small
//! number of synthetic lanes for master/controller activity.
//!
//! Nesting is enforced at record time with a per-lane span stack: `end`
//! without a matching `begin` is rejected, and [`EventStream::open_spans`]
//! exposes the dangling count so tests (and the exporter) can assert that
//! every span was closed. Timestamps are virtual seconds; the Chrome
//! exporter converts to microseconds.

use std::collections::BTreeMap;

/// A trace lane: one horizontal row in the trace viewer.
///
/// `pid` groups rows (a node, or a synthetic process such as the master);
/// `tid` is the row within the group (a GPU, or a control thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LaneId {
    /// Process row (node index, or a synthetic process id).
    pub pid: u32,
    /// Thread row within the process (GPU index, or a control thread).
    pub tid: u32,
}

impl LaneId {
    /// The lane of GPU `gpu` on node `node`.
    pub fn gpu(node: u32, gpu: u32) -> Self {
        Self {
            pid: node,
            tid: gpu,
        }
    }

    /// The synthetic master/controller lane.
    pub fn master() -> Self {
        Self {
            pid: u32::MAX,
            tid: 0,
        }
    }
}

/// One event in the stream. Timestamps are virtual-clock seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// Opens a nested span on `lane`.
    Begin {
        /// Lane the span lives on.
        lane: LaneId,
        /// Span name (e.g. `layer_fwd`).
        name: String,
        /// Category (e.g. `compute`, `tp-comm`).
        category: String,
        /// Start time.
        ts: f64,
    },
    /// Closes the innermost open span on `lane`.
    End {
        /// Lane the span lives on.
        lane: LaneId,
        /// End time.
        ts: f64,
    },
    /// A point-in-time marker.
    Instant {
        /// Lane the marker sits on.
        lane: LaneId,
        /// Marker name.
        name: String,
        /// Category.
        category: String,
        /// Time of the marker.
        ts: f64,
    },
    /// One sample of a named counter track.
    Counter {
        /// Process the track belongs to.
        pid: u32,
        /// Track name (e.g. `mem/node0/gpu1`).
        track: String,
        /// Sample time.
        ts: f64,
        /// Sampled value.
        value: f64,
    },
    /// Start of a flow arrow (e.g. master dispatches a `Request`).
    FlowStart {
        /// Correlation id shared with the matching [`StreamEvent::FlowEnd`].
        id: u64,
        /// Flow name.
        name: String,
        /// Lane the arrow leaves from.
        lane: LaneId,
        /// Departure time.
        ts: f64,
    },
    /// End of a flow arrow (e.g. a worker `Response` completes).
    FlowEnd {
        /// Correlation id shared with the matching [`StreamEvent::FlowStart`].
        id: u64,
        /// Flow name.
        name: String,
        /// Lane the arrow lands on.
        lane: LaneId,
        /// Arrival time.
        ts: f64,
    },
}

/// Bounded, append-only event stream with lane metadata.
#[derive(Debug, Clone, Default)]
pub struct EventStream {
    events: Vec<StreamEvent>,
    capacity: usize,
    dropped: u64,
    /// `pid -> process name` (e.g. `node0`).
    process_names: BTreeMap<u32, String>,
    /// `(pid, tid) -> thread name` (e.g. `gpu3`).
    thread_names: BTreeMap<(u32, u32), String>,
    /// Per-lane count of currently open spans.
    open: BTreeMap<LaneId, u32>,
}

impl EventStream {
    /// Creates a stream holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Names a lane `node{n}/gpu{g}`-style for the trace viewer. Metadata is
    /// stored out-of-band and does not count against capacity.
    pub fn set_lane_name(&mut self, lane: LaneId, process: &str, thread: &str) {
        self.process_names.insert(lane.pid, process.to_string());
        self.thread_names
            .insert((lane.pid, lane.tid), thread.to_string());
    }

    fn push(&mut self, event: StreamEvent) -> bool {
        if self.capacity > 0 && self.events.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.events.push(event);
        true
    }

    /// Opens a span. Returns `false` when the event was dropped (stream
    /// full); the matching [`EventStream::end`] must still be called — the
    /// stack is tracked independently of storage so nesting stays balanced.
    pub fn begin(&mut self, lane: LaneId, name: &str, category: &str, ts: f64) -> bool {
        *self.open.entry(lane).or_insert(0) += 1;
        self.push(StreamEvent::Begin {
            lane,
            name: name.to_string(),
            category: category.to_string(),
            ts,
        })
    }

    /// Closes the innermost open span on `lane`.
    ///
    /// # Panics
    ///
    /// Panics when no span is open on `lane` — an unmatched `end` is a
    /// programming error that would corrupt the whole trace.
    pub fn end(&mut self, lane: LaneId, ts: f64) -> bool {
        let open = self.open.get_mut(&lane);
        match open {
            Some(n) if *n > 0 => *n -= 1,
            _ => panic!("EventStream::end on lane {lane:?} with no open span"),
        }
        self.push(StreamEvent::End { lane, ts })
    }

    /// Records a complete span (begin + end in one call).
    pub fn span(&mut self, lane: LaneId, name: &str, category: &str, start: f64, end: f64) {
        self.begin(lane, name, category, start);
        self.end(lane, end);
    }

    /// Records an instant marker.
    pub fn instant(&mut self, lane: LaneId, name: &str, category: &str, ts: f64) -> bool {
        self.push(StreamEvent::Instant {
            lane,
            name: name.to_string(),
            category: category.to_string(),
            ts,
        })
    }

    /// Records one counter-track sample.
    pub fn counter(&mut self, pid: u32, track: &str, ts: f64, value: f64) -> bool {
        self.push(StreamEvent::Counter {
            pid,
            track: track.to_string(),
            ts,
            value,
        })
    }

    /// Records the start of a flow arrow.
    pub fn flow_start(&mut self, id: u64, name: &str, lane: LaneId, ts: f64) -> bool {
        self.push(StreamEvent::FlowStart {
            id,
            name: name.to_string(),
            lane,
            ts,
        })
    }

    /// Records the end of a flow arrow.
    pub fn flow_end(&mut self, id: u64, name: &str, lane: LaneId, ts: f64) -> bool {
        self.push(StreamEvent::FlowEnd {
            id,
            name: name.to_string(),
            lane,
            ts,
        })
    }

    /// The recorded events, in record order.
    pub fn events(&self) -> &[StreamEvent] {
        &self.events
    }

    /// Number of events dropped after the stream filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total count of spans currently open across all lanes.
    pub fn open_spans(&self) -> u32 {
        self.open.values().sum()
    }

    /// Named processes, sorted by pid.
    pub fn process_names(&self) -> impl Iterator<Item = (u32, &str)> {
        self.process_names
            .iter()
            .map(|(&pid, name)| (pid, name.as_str()))
    }

    /// Named threads, sorted by (pid, tid).
    pub fn thread_names(&self) -> impl Iterator<Item = (u32, u32, &str)> {
        self.thread_names
            .iter()
            .map(|(&(pid, tid), name)| (pid, tid, name.as_str()))
    }

    /// Checks the cross-event invariants tests rely on:
    /// every recorded `End` closes an earlier `Begin` on the same lane (the
    /// per-lane running depth never goes negative), no span is left open,
    /// span timestamps within a lane are non-decreasing in record order,
    /// and every flow id appears as a start/end pair with the start recorded
    /// before the end.
    ///
    /// The strict checks are waived once events were dropped: a truncated
    /// stream may legitimately retain an `End` whose `Begin` fell off, and
    /// its surviving order proves nothing about the emitter.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.open_spans() != 0 {
            return Err(format!("{} span(s) left open", self.open_spans()));
        }
        let mut depth: BTreeMap<LaneId, i64> = BTreeMap::new();
        let mut last_ts: BTreeMap<LaneId, f64> = BTreeMap::new();
        let mut flow_starts: BTreeMap<u64, u64> = BTreeMap::new();
        let mut flow_ends: BTreeMap<u64, u64> = BTreeMap::new();
        // Emitters accumulate timestamps in floating point, so a few ulps of
        // backwards drift between adjacent spans is legitimate; only a
        // visible regression is an ordering violation.
        const TS_EPS: f64 = 1e-9;
        let mut check_lane_ts = |lane: &LaneId, ts: f64| -> Result<(), String> {
            if let Some(&prev) = last_ts.get(lane) {
                if ts < prev - TS_EPS {
                    return Err(format!(
                        "out-of-order span timestamp on lane {lane:?}: {ts} after {prev}"
                    ));
                }
                if ts <= prev {
                    return Ok(()); // keep the high-water mark
                }
            }
            last_ts.insert(*lane, ts);
            Ok(())
        };
        for event in &self.events {
            match event {
                StreamEvent::Begin { lane, ts, .. } => {
                    *depth.entry(*lane).or_insert(0) += 1;
                    if self.dropped == 0 {
                        check_lane_ts(lane, *ts)?;
                    }
                }
                StreamEvent::End { lane, ts } => {
                    let d = depth.entry(*lane).or_insert(0);
                    *d -= 1;
                    if self.dropped == 0 {
                        if *d < 0 {
                            return Err(format!("unmatched end on lane {lane:?}"));
                        }
                        check_lane_ts(lane, *ts)?;
                    }
                }
                StreamEvent::FlowStart { id, .. } => {
                    *flow_starts.entry(*id).or_insert(0) += 1;
                }
                StreamEvent::FlowEnd { id, .. } => {
                    *flow_ends.entry(*id).or_insert(0) += 1;
                    if self.dropped == 0
                        && flow_ends.get(id).copied().unwrap_or(0)
                            > flow_starts.get(id).copied().unwrap_or(0)
                    {
                        return Err(format!("flow {id} ends without a start"));
                    }
                }
                _ => {}
            }
        }
        if self.dropped == 0 {
            for (lane, d) in &depth {
                if *d != 0 {
                    return Err(format!("lane {lane:?} ends with depth {d}"));
                }
            }
            for (id, n) in &flow_starts {
                if flow_ends.get(id) != Some(n) {
                    return Err(format!(
                        "flow {id} has {n} start(s) without matching end(s)"
                    ));
                }
            }
            for id in flow_ends.keys() {
                if !flow_starts.contains_key(id) {
                    return Err(format!("flow {id} ends without a start"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_balance() {
        let mut s = EventStream::with_capacity(100);
        let lane = LaneId::gpu(0, 1);
        s.begin(lane, "outer", "compute", 0.0);
        s.begin(lane, "inner", "compute", 1.0);
        assert_eq!(s.open_spans(), 2);
        s.end(lane, 2.0);
        s.end(lane, 3.0);
        assert_eq!(s.open_spans(), 0);
        assert!(s.check_invariants().is_ok());
    }

    #[test]
    #[should_panic(expected = "no open span")]
    fn unmatched_end_panics() {
        let mut s = EventStream::with_capacity(10);
        s.end(LaneId::gpu(0, 0), 1.0);
    }

    #[test]
    fn out_of_order_span_timestamps_are_rejected() {
        let mut s = EventStream::with_capacity(10);
        let lane = LaneId::gpu(0, 0);
        s.span(lane, "a", "compute", 2.0, 3.0);
        s.span(lane, "b", "compute", 1.0, 1.5); // starts before `a` ended
        let err = s.check_invariants().unwrap_err();
        assert!(err.contains("out-of-order span timestamp"), "{err}");
        // A different lane is an independent clock: no violation.
        let mut s = EventStream::with_capacity(10);
        s.span(LaneId::gpu(0, 0), "a", "compute", 2.0, 3.0);
        s.span(LaneId::gpu(0, 1), "b", "compute", 1.0, 1.5);
        assert!(s.check_invariants().is_ok());
    }

    #[test]
    fn end_before_begin_timestamp_is_rejected() {
        let mut s = EventStream::with_capacity(10);
        let lane = LaneId::gpu(0, 0);
        s.span(lane, "a", "compute", 1.0, 0.5); // ends before it starts
        let err = s.check_invariants().unwrap_err();
        assert!(err.contains("out-of-order span timestamp"), "{err}");
    }

    #[test]
    fn flow_end_recorded_before_start_is_rejected() {
        let mut s = EventStream::with_capacity(10);
        s.flow_end(7, "req", LaneId::gpu(0, 0), 1.0);
        s.flow_start(7, "req", LaneId::master(), 0.0);
        let err = s.check_invariants().unwrap_err();
        assert!(err.contains("ends without a start"), "{err}");
    }

    #[test]
    fn flows_must_pair() {
        let mut s = EventStream::with_capacity(10);
        s.flow_start(7, "req", LaneId::master(), 0.0);
        assert!(s.check_invariants().is_err());
        s.flow_end(7, "req", LaneId::gpu(0, 0), 1.0);
        assert!(s.check_invariants().is_ok());
    }

    #[test]
    fn capacity_bounds_storage_not_nesting() {
        let mut s = EventStream::with_capacity(2);
        let lane = LaneId::gpu(0, 0);
        s.span(lane, "a", "compute", 0.0, 1.0); // fills capacity
        s.span(lane, "b", "compute", 1.0, 2.0); // dropped, stack stays sane
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.open_spans(), 0);
        assert!(s.check_invariants().is_ok());
    }

    /// Drives a stream with an arbitrary op sequence, keeping a shadow stack
    /// so every `end` targets a lane with an open span. Returns the stream
    /// with all spans closed.
    fn drive(ops: &[(usize, u32, u32)], capacity: usize) -> EventStream {
        let mut s = EventStream::with_capacity(capacity);
        let mut stack: Vec<LaneId> = Vec::new();
        let mut flows: u64 = 0;
        let mut ts = 0.0;
        for &(op, node, gpu) in ops {
            let lane = LaneId::gpu(node, gpu);
            ts += 0.5;
            match op {
                0 => {
                    s.begin(lane, "span", "compute", ts);
                    stack.push(lane);
                }
                1 => {
                    if let Some(l) = stack.pop() {
                        s.end(l, ts);
                    }
                }
                2 => {
                    s.instant(lane, "mark", "compute", ts);
                }
                3 => {
                    s.counter(node, "mem", ts, f64::from(gpu));
                }
                _ => {
                    s.flow_start(flows, "req", LaneId::master(), ts);
                    s.flow_end(flows, "req", lane, ts + 0.25);
                    flows += 1;
                }
            }
        }
        while let Some(l) = stack.pop() {
            ts += 0.5;
            s.end(l, ts);
        }
        s
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn random_well_formed_streams_keep_invariants(
            ops in proptest::collection::vec((0usize..5, 0u32..3, 0u32..4), 0..120)
        ) {
            let s = drive(&ops, 0);
            prop_assert_eq!(s.open_spans(), 0);
            prop_assert_eq!(s.dropped(), 0);
            prop_assert!(s.check_invariants().is_ok());
            // Per-lane begin/end counts balance exactly.
            let mut per_lane: BTreeMap<LaneId, i64> = BTreeMap::new();
            for e in s.events() {
                match e {
                    StreamEvent::Begin { lane, .. } => *per_lane.entry(*lane).or_insert(0) += 1,
                    StreamEvent::End { lane, .. } => *per_lane.entry(*lane).or_insert(0) -= 1,
                    _ => {}
                }
            }
            for (_, d) in per_lane {
                prop_assert_eq!(d, 0);
            }
        }

        #[test]
        fn random_flow_ids_always_pair(
            ops in proptest::collection::vec((0usize..5, 0u32..3, 0u32..4), 0..120)
        ) {
            let s = drive(&ops, 0);
            let mut starts: BTreeMap<u64, u64> = BTreeMap::new();
            let mut ends: BTreeMap<u64, u64> = BTreeMap::new();
            for e in s.events() {
                match e {
                    StreamEvent::FlowStart { id, .. } => *starts.entry(*id).or_insert(0) += 1,
                    StreamEvent::FlowEnd { id, .. } => *ends.entry(*id).or_insert(0) += 1,
                    _ => {}
                }
            }
            prop_assert_eq!(starts, ends);
        }

        #[test]
        fn capped_streams_drop_without_corruption(
            ops in proptest::collection::vec((0usize..5, 0u32..3, 0u32..4), 0..120),
            cap in 1usize..8
        ) {
            let s = drive(&ops, cap);
            prop_assert!(s.events().len() <= cap);
            prop_assert_eq!(s.open_spans(), 0);
            // A truncated stream still passes (the strict checks are waived
            // once events were dropped, but the walk must not error).
            prop_assert!(s.check_invariants().is_ok());
        }

        #[test]
        fn chrome_export_of_random_stream_parses(
            ops in proptest::collection::vec((0usize..5, 0u32..3, 0u32..4), 0..60)
        ) {
            let s = drive(&ops, 0);
            let json = crate::chrome::to_chrome_string(&s);
            let v: serde_json::Value = serde_json::from_str(&json).expect("export parses");
            prop_assert_eq!(v.as_array().unwrap().len(), s.events().len());
        }
    }

    #[test]
    fn lane_metadata_is_sorted() {
        let mut s = EventStream::with_capacity(10);
        s.set_lane_name(LaneId::gpu(1, 0), "node1", "gpu0");
        s.set_lane_name(LaneId::gpu(0, 3), "node0", "gpu3");
        let procs: Vec<_> = s.process_names().collect();
        assert_eq!(procs, vec![(0, "node0"), (1, "node1")]);
        let threads: Vec<_> = s.thread_names().collect();
        assert_eq!(threads, vec![(0, 3, "gpu3"), (1, 0, "gpu0")]);
    }
}
