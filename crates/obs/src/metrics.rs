//! Deterministic metrics registry.
//!
//! Counters, gauges, fixed-bucket histograms, and bounded `(x, y)` series,
//! keyed by `(name, labels)`. Everything is ordered (BTreeMap over a sorted
//! label list), so a snapshot of the same run serializes to byte-identical
//! JSON — a hard requirement for the repo's reproducibility guarantees and
//! for golden-file tests.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A metric identity: name plus sorted `key=value` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key; labels are sorted so equal label *sets* compare equal.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted labels.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}={v}")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// A fixed-bucket histogram.
///
/// `bounds` are the upper bucket edges; an observation lands in the first
/// bucket whose bound is `>= value`, or in the implicit overflow bucket, so
/// `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram over the given (strictly increasing)
    /// bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics when bounds are empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// The upper bucket edges.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket observation counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observed values, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the quantile `q` in `[0, 1]` by linear interpolation inside
    /// the bucket containing the rank (the classic Prometheus
    /// `histogram_quantile` scheme). Returns `None` when empty.
    ///
    /// The first bucket interpolates from zero (bounds are assumed
    /// non-negative, which holds for every duration/size histogram in this
    /// repo); ranks landing in the overflow bucket clamp to the last bound,
    /// the tightest statement the data supports.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        let rank = q * self.count as f64;
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if (below + c) as f64 >= rank {
                if i >= self.bounds.len() {
                    // Overflow bucket: no upper edge to interpolate toward.
                    return Some(*self.bounds.last().expect("bounds nonempty"));
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                if c == 0 {
                    return Some(lo);
                }
                let frac = (rank - below as f64) / c as f64;
                return Some(lo + (hi - lo) * frac.clamp(0.0, 1.0));
            }
            below += c;
        }
        Some(*self.bounds.last().expect("bounds nonempty"))
    }

    /// Merges another histogram bucket-wise.
    ///
    /// # Errors
    ///
    /// Errors (leaving `self` untouched) when the bucket bounds differ —
    /// adding counts across different bucketings would silently corrupt the
    /// distribution.
    pub fn try_merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        if self.bounds != other.bounds {
            return Err(MergeError::HistogramBounds {
                ours: self.bounds.clone(),
                theirs: other.bounds.clone(),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        Ok(())
    }
}

/// A bounded `(x, y)` series (e.g. energy over MCMC steps). When full, new
/// points are dropped and counted, keeping memory bounded on long runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    points: Vec<(f64, f64)>,
    capacity: usize,
    dropped: u64,
}

impl Series {
    /// Creates an empty series holding at most `capacity` points.
    pub fn new(capacity: usize) -> Self {
        Self {
            points: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a point, dropping it (and counting the drop) when full.
    pub fn push(&mut self, x: f64, y: f64) {
        if self.points.len() < self.capacity {
            self.points.push((x, y));
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points dropped after the series filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The last recorded `y`, if any.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// Appends another series' points, keeping this series' capacity and
    /// counting everything that does not fit (plus the other side's existing
    /// drops) as dropped.
    pub fn merge(&mut self, other: &Series) {
        for &(x, y) in &other.points {
            self.push(x, y);
        }
        self.dropped += other.dropped;
    }
}

/// Why two registries (or two metric values) could not be merged.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// Histograms with different bucket bounds cannot be added bucket-wise.
    HistogramBounds {
        /// Bounds on the receiving side.
        ours: Vec<f64>,
        /// Bounds on the incoming side.
        theirs: Vec<f64>,
    },
    /// The same key holds different metric kinds on the two sides.
    KindMismatch {
        /// The colliding key, rendered as `name{labels}`.
        key: String,
        /// Kind on the receiving side.
        ours: &'static str,
        /// Kind on the incoming side.
        theirs: &'static str,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::HistogramBounds { ours, theirs } => write!(
                f,
                "histogram bounds differ: {ours:?} (ours) vs {theirs:?} (theirs)"
            ),
            MergeError::KindMismatch { key, ours, theirs } => {
                write!(f, "cannot merge metric `{key}`: {theirs} into {ours}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotonically accumulated total.
    Counter(f64),
    /// Last-write-wins level.
    Gauge(f64),
    /// Fixed-bucket distribution.
    Histogram(Histogram),
    /// Bounded `(x, y)` trajectory.
    Series(Series),
}

impl MetricValue {
    /// The scalar reading for counters/gauges, the mean for histograms, and
    /// the last `y` for series. Handy for table rendering.
    pub fn scalar(&self) -> f64 {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(h) => h.mean(),
            MetricValue::Series(s) => s.last_y().unwrap_or(0.0),
        }
    }

    /// A short kind tag for display.
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
            MetricValue::Series(_) => "series",
        }
    }
}

/// Deterministic registry of metrics keyed by `(name, labels)`.
///
/// Type mismatches (e.g. `counter_add` on a key previously registered as a
/// gauge) panic: they are programming errors, and failing loudly in the
/// simulator is strictly better than silently corrupting telemetry.
///
/// # Examples
///
/// ```
/// use real_obs::{MetricsRegistry, MetricValue};
///
/// let mut m = MetricsRegistry::new();
/// m.counter_inc("runtime/fault_retries", &[]);
/// m.counter_add("runtime/fault_retries", &[], 2.0);
/// m.gauge_set("runtime/fault_lost_gpu_seconds", &[("node", "0")], 4.5);
/// assert_eq!(
///     m.get("runtime/fault_retries", &[]),
///     Some(&MetricValue::Counter(3.0)),
/// );
/// // Snapshots iterate in sorted key order, so two registries built the
/// // same way serialize byte-identically.
/// assert_eq!(m.snapshot().metrics.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<MetricKey, MetricValue>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter, creating it at zero on first touch.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: f64) {
        let entry = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert(MetricValue::Counter(0.0));
        match entry {
            MetricValue::Counter(v) => *v += delta,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Increments a counter by one.
    pub fn counter_inc(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.counter_add(name, labels, 1.0);
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let entry = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert(MetricValue::Gauge(0.0));
        match entry {
            MetricValue::Gauge(v) => *v = value,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Sets a gauge to `numerator / denominator`, or `0.0` when the
    /// denominator is zero — the shape every cache hit-rate and
    /// success-ratio gauge wants (`search/memo_hit_rate`,
    /// `sched/memo_hit_rate`), with the divide-by-zero policy in one place.
    ///
    /// # Panics
    ///
    /// Panics if the metric exists with a non-gauge type.
    pub fn ratio_gauge(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        numerator: f64,
        denominator: f64,
    ) {
        let ratio = if denominator == 0.0 {
            0.0
        } else {
            numerator / denominator
        };
        self.gauge_set(name, labels, ratio);
    }

    /// Records an observation into a histogram, creating it with `bounds` on
    /// first touch (later calls ignore `bounds`).
    pub fn histogram_observe(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        let entry = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)));
        match entry {
            MetricValue::Histogram(h) => h.observe(value),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Appends a point to a bounded series, creating it with `capacity` on
    /// first touch (later calls ignore `capacity`).
    pub fn series_push(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        capacity: usize,
        x: f64,
        y: f64,
    ) {
        let entry = self
            .metrics
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| MetricValue::Series(Series::new(capacity)));
        match entry {
            MetricValue::Series(s) => s.push(x, y),
            other => panic!("metric `{name}` is a {}, not a series", other.kind()),
        }
    }

    /// Looks up a metric by name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.metrics.get(&MetricKey::new(name, labels))
    }

    /// Iterates metrics in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &MetricValue)> {
        self.metrics.iter()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Merges another registry into this one: counters add, gauges take the
    /// other's value, histograms add bucket-wise, series concatenate up to
    /// capacity (overflow counted as dropped), and absent keys copy over.
    ///
    /// # Errors
    ///
    /// Errors on a key collision of mismatched kinds, or on histogram
    /// collisions whose bucket bounds differ. Keys merged before the failing
    /// one stay merged; the failing key (and later ones) are untouched.
    pub fn try_merge(&mut self, other: &MetricsRegistry) -> Result<(), MergeError> {
        for (key, value) in other.iter() {
            match (self.metrics.get_mut(key), value) {
                (None, v) => {
                    self.metrics.insert(key.clone(), v.clone());
                }
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a = *b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => {
                    a.try_merge(b)?;
                }
                (Some(MetricValue::Series(a)), MetricValue::Series(b)) => a.merge(b),
                (Some(existing), incoming) => {
                    return Err(MergeError::KindMismatch {
                        key: key.to_string(),
                        ours: existing.kind(),
                        theirs: incoming.kind(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Infallible [`MetricsRegistry::try_merge`] for callers that treat a
    /// collision as a programming error.
    ///
    /// # Panics
    ///
    /// Panics on the errors `try_merge` reports.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        if let Err(e) = self.try_merge(other) {
            panic!("MetricsRegistry::merge failed: {e}");
        }
    }

    /// Takes an immutable snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self
                .metrics
                .iter()
                .map(|(k, v)| SnapshotEntry {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: v.clone(),
                })
                .collect(),
        }
    }
}

/// One `(key, value)` pair in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// Metric name.
    pub name: String,
    /// Sorted labels.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time copy of a registry, serializable to/from JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All metrics, in deterministic key order.
    pub metrics: Vec<SnapshotEntry>,
}

impl MetricsSnapshot {
    /// Looks up an entry by name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let key = MetricKey::new(name, labels);
        self.metrics
            .iter()
            .find(|e| e.name == key.name && e.labels == key.labels)
            .map(|e| &e.value)
    }

    /// Rebuilds a registry (e.g. after JSON round-trip).
    pub fn into_registry(self) -> MetricsRegistry {
        MetricsRegistry {
            metrics: self
                .metrics
                .into_iter()
                .map(|e| {
                    (
                        MetricKey {
                            name: e.name,
                            labels: e.labels,
                        },
                        e.value,
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        reg.counter_inc("requests", &[("model", "actor")]);
        reg.counter_add("requests", &[("model", "actor")], 2.0);
        reg.gauge_set("mem", &[], 5.0);
        reg.gauge_set("mem", &[], 7.0);
        assert_eq!(
            reg.get("requests", &[("model", "actor")]).unwrap().scalar(),
            3.0
        );
        assert_eq!(reg.get("mem", &[]).unwrap().scalar(), 7.0);
    }

    #[test]
    fn label_order_is_canonicalized() {
        let mut reg = MetricsRegistry::new();
        reg.counter_inc("x", &[("b", "2"), ("a", "1")]);
        reg.counter_inc("x", &[("a", "1"), ("b", "2")]);
        assert_eq!(reg.len(), 1);
        assert_eq!(
            reg.get("x", &[("a", "1"), ("b", "2")]).unwrap().scalar(),
            2.0
        );
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        // A value exactly on a bound lands in that bound's bucket
        // (bucket = first bound >= value).
        h.observe(0.5); // bucket 0 (<= 1.0)
        h.observe(1.0); // bucket 0 (== 1.0)
        h.observe(1.5); // bucket 1 (<= 2.0)
        h.observe(2.0); // bucket 1 (== 2.0)
        h.observe(3.0); // bucket 2 (<= 4.0)
        h.observe(9.0); // overflow bucket
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 17.0).abs() < 1e-12);
        assert!((h.mean() - 17.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn series_is_bounded() {
        let mut s = Series::new(2);
        s.push(0.0, 1.0);
        s.push(1.0, 2.0);
        s.push(2.0, 3.0);
        assert_eq!(s.points(), &[(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.last_y(), Some(2.0));
    }

    #[test]
    fn snapshot_json_round_trip() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("steps", &[("chain", "0")], 41.0);
        reg.gauge_set("best_cost", &[], 3.25);
        reg.histogram_observe("latency", &[], &[0.001, 0.01, 0.1], 0.004);
        reg.histogram_observe("latency", &[], &[0.001, 0.01, 0.1], 0.2);
        reg.series_push("energy", &[("chain", "0")], 16, 0.0, 10.0);
        reg.series_push("energy", &[("chain", "0")], 16, 1.0, 8.5);

        let snap = reg.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.clone().into_registry(), reg);

        // Deterministic serialization: same registry, same bytes.
        let json2 = serde_json::to_string_pretty(&reg.snapshot()).unwrap();
        assert_eq!(json, json2);
    }

    #[test]
    fn merge_adds_counters_and_keeps_disjoint_metrics() {
        let mut a = MetricsRegistry::new();
        a.counter_add("n", &[], 1.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("n", &[], 2.0);
        b.gauge_set("g", &[], 4.0);
        a.merge(&b);
        assert_eq!(a.get("n", &[]).unwrap().scalar(), 3.0);
        assert_eq!(a.get("g", &[]).unwrap().scalar(), 4.0);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("x", &[], 1.0);
        reg.counter_inc("x", &[]);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..10 {
            h.observe(0.5); // bucket [0, 1]
        }
        for _ in 0..10 {
            h.observe(1.5); // bucket (1, 2]
        }
        // p50 sits exactly at the first bucket's upper edge.
        assert!((h.quantile(0.5).unwrap() - 1.0).abs() < 1e-12);
        // p75 is halfway through the second bucket.
        assert!((h.quantile(0.75).unwrap() - 1.5).abs() < 1e-12);
        // p0 pins to the bottom, p100 to the highest occupied edge.
        assert!((h.quantile(0.0).unwrap() - 0.0).abs() < 1e-12);
        assert!((h.quantile(1.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_clamps_overflow_and_handles_empty() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        assert_eq!(h.quantile(0.5), None);
        h.observe(100.0); // overflow bucket
        assert_eq!(h.quantile(0.99), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_out_of_range() {
        Histogram::new(&[1.0]).quantile(1.5);
    }

    #[test]
    fn merge_adds_histograms_bucket_wise() {
        let mut a = MetricsRegistry::new();
        a.histogram_observe("lat", &[], &[1.0, 2.0], 0.5);
        let mut b = MetricsRegistry::new();
        b.histogram_observe("lat", &[], &[1.0, 2.0], 1.5);
        b.histogram_observe("lat", &[], &[1.0, 2.0], 9.0);
        a.merge(&b);
        let MetricValue::Histogram(h) = a.get("lat", &[]).unwrap() else {
            panic!("expected histogram");
        };
        assert_eq!(h.counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn merge_rejects_mismatched_histogram_bounds() {
        let mut a = MetricsRegistry::new();
        a.histogram_observe("lat", &[], &[1.0, 2.0], 0.5);
        let mut b = MetricsRegistry::new();
        b.histogram_observe("lat", &[], &[1.0, 3.0], 0.5);
        let err = a.try_merge(&b).unwrap_err();
        assert!(matches!(err, MergeError::HistogramBounds { .. }));
        // The receiving histogram was not corrupted.
        let MetricValue::Histogram(h) = a.get("lat", &[]).unwrap() else {
            panic!("expected histogram");
        };
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn merge_concatenates_series_with_drop_accounting() {
        let mut a = MetricsRegistry::new();
        a.series_push("e", &[], 3, 0.0, 1.0);
        a.series_push("e", &[], 3, 1.0, 2.0);
        let mut b = MetricsRegistry::new();
        b.series_push("e", &[], 3, 2.0, 3.0);
        b.series_push("e", &[], 3, 3.0, 4.0);
        a.merge(&b);
        let MetricValue::Series(s) = a.get("e", &[]).unwrap() else {
            panic!("expected series");
        };
        // Capacity 3: the first incoming point fits, the second is dropped.
        assert_eq!(s.points(), &[(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn merge_reports_kind_mismatch_cleanly() {
        let mut a = MetricsRegistry::new();
        a.counter_add("x", &[("t", "0")], 1.0);
        let mut b = MetricsRegistry::new();
        b.gauge_set("x", &[("t", "0")], 2.0);
        let err = a.try_merge(&b).unwrap_err();
        assert_eq!(
            err.to_string(),
            "cannot merge metric `x{t=0}`: gauge into counter"
        );
    }
}
