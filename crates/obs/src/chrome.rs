//! Chrome/Perfetto trace exporter.
//!
//! Converts an [`EventStream`] into the Chrome Trace Event JSON-array format
//! (loadable at `chrome://tracing` and in the Perfetto UI). All string
//! content goes through `serde_json`, so arbitrary labels cannot break the
//! output — the hand-rolled string concatenation this replaces interpolated
//! labels unescaped.
//!
//! Mapping:
//!
//! | stream event        | chrome `ph` | notes                               |
//! |---------------------|-------------|-------------------------------------|
//! | `Begin` / `End`     | `B` / `E`   | nested spans per lane               |
//! | `Instant`           | `i`         | thread-scoped (`"s":"t"`)           |
//! | `Counter`           | `C`         | one track per counter name          |
//! | `FlowStart`/`FlowEnd` | `s` / `f` | `bp:"e"` binds to enclosing slice   |
//! | lane names          | `M`         | `process_name` / `thread_name`      |
//!
//! Virtual-clock seconds are converted to microseconds (the unit Chrome
//! expects in `ts`).

use serde::Value;

use crate::events::{EventStream, LaneId, StreamEvent};

const SECS_TO_MICROS: f64 = 1e6;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Converts the stream to the Chrome trace event array as a JSON value.
///
/// Metadata events come first (so viewers name lanes before drawing), then
/// the recorded events in record order.
pub fn to_chrome_value(stream: &EventStream) -> Value {
    let mut events: Vec<Value> = Vec::with_capacity(stream.events().len() + 16);

    for (pid, name) in stream.process_names() {
        events.push(obj(vec![
            ("ph", Value::from("M")),
            ("name", Value::from("process_name")),
            ("pid", Value::from(pid)),
            ("args", obj(vec![("name", Value::from(name))])),
        ]));
    }
    for (pid, tid, name) in stream.thread_names() {
        events.push(obj(vec![
            ("ph", Value::from("M")),
            ("name", Value::from("thread_name")),
            ("pid", Value::from(pid)),
            ("tid", Value::from(tid)),
            ("args", obj(vec![("name", Value::from(name))])),
        ]));
    }

    for event in stream.events() {
        events.push(match event {
            StreamEvent::Begin {
                lane,
                name,
                category,
                ts,
            } => obj(vec![
                ("ph", Value::from("B")),
                ("name", Value::from(name.as_str())),
                ("cat", Value::from(category.as_str())),
                ("pid", Value::from(lane.pid)),
                ("tid", Value::from(lane.tid)),
                ("ts", Value::from(ts * SECS_TO_MICROS)),
            ]),
            StreamEvent::End { lane, ts } => obj(vec![
                ("ph", Value::from("E")),
                ("pid", Value::from(lane.pid)),
                ("tid", Value::from(lane.tid)),
                ("ts", Value::from(ts * SECS_TO_MICROS)),
            ]),
            StreamEvent::Instant {
                lane,
                name,
                category,
                ts,
            } => obj(vec![
                ("ph", Value::from("i")),
                ("name", Value::from(name.as_str())),
                ("cat", Value::from(category.as_str())),
                ("pid", Value::from(lane.pid)),
                ("tid", Value::from(lane.tid)),
                ("ts", Value::from(ts * SECS_TO_MICROS)),
                ("s", Value::from("t")),
            ]),
            StreamEvent::Counter {
                pid,
                track,
                ts,
                value,
            } => obj(vec![
                ("ph", Value::from("C")),
                ("name", Value::from(track.as_str())),
                ("pid", Value::from(*pid)),
                ("ts", Value::from(ts * SECS_TO_MICROS)),
                ("args", obj(vec![("value", Value::from(*value))])),
            ]),
            StreamEvent::FlowStart { id, name, lane, ts } => obj(vec![
                ("ph", Value::from("s")),
                ("name", Value::from(name.as_str())),
                ("cat", Value::from("flow")),
                ("id", Value::from(*id)),
                ("pid", Value::from(lane.pid)),
                ("tid", Value::from(lane.tid)),
                ("ts", Value::from(ts * SECS_TO_MICROS)),
            ]),
            StreamEvent::FlowEnd { id, name, lane, ts } => obj(vec![
                ("ph", Value::from("f")),
                ("name", Value::from(name.as_str())),
                ("cat", Value::from("flow")),
                ("id", Value::from(*id)),
                ("bp", Value::from("e")),
                ("pid", Value::from(lane.pid)),
                ("tid", Value::from(lane.tid)),
                ("ts", Value::from(ts * SECS_TO_MICROS)),
            ]),
        });
    }

    Value::Array(events)
}

/// Converts the stream to a compact Chrome trace JSON string.
pub fn to_chrome_string(stream: &EventStream) -> String {
    serde_json::to_string(&to_chrome_value(stream)).expect("Value serialization is infallible")
}

/// Imports a Chrome trace event array back into an [`EventStream`] — the
/// inverse of [`to_chrome_value`], used by `real profile --trace file.json`
/// to analyze saved traces offline. Unknown phases are skipped; timestamps
/// convert from microseconds back to virtual seconds.
///
/// # Errors
///
/// Returns a description when the value is not an event array or an `E`
/// event closes a lane with no open span (a malformed or truncated trace).
pub fn from_chrome_value(value: &Value) -> Result<EventStream, String> {
    let events = value
        .as_array()
        .ok_or("chrome trace must be a JSON array")?;
    let mut stream = EventStream::with_capacity(0);
    let mut open: std::collections::BTreeMap<(u32, u32), u32> = std::collections::BTreeMap::new();
    let str_of = |e: &Value, key: &str| e[key].as_str().map(str::to_string);
    let u32_of = |e: &Value, key: &str| e[key].as_f64().map(|v| v as u32);
    let ts_of = |e: &Value| e["ts"].as_f64().map(|v| v / SECS_TO_MICROS);

    // Metadata pre-pass: process names carry no tid, so pair each thread
    // record with its process record before applying lane names.
    let mut procs: std::collections::BTreeMap<u32, String> = std::collections::BTreeMap::new();
    let mut threads: std::collections::BTreeMap<(u32, u32), String> =
        std::collections::BTreeMap::new();
    for e in events {
        if e["ph"].as_str() != Some("M") {
            continue;
        }
        let pid = u32_of(e, "pid").unwrap_or(0);
        match (e["name"].as_str(), e["args"]["name"].as_str()) {
            (Some("process_name"), Some(n)) => {
                procs.insert(pid, n.to_string());
            }
            (Some("thread_name"), Some(n)) => {
                threads.insert((pid, u32_of(e, "tid").unwrap_or(0)), n.to_string());
            }
            _ => {}
        }
    }
    for (&(pid, tid), thread) in &threads {
        let process = procs.get(&pid).map_or("", String::as_str);
        stream.set_lane_name(LaneId { pid, tid }, process, thread);
    }

    for e in events {
        let Some(ph) = e["ph"].as_str() else { continue };
        let pid = u32_of(e, "pid").unwrap_or(0);
        let tid = u32_of(e, "tid").unwrap_or(0);
        let lane = LaneId { pid, tid };
        let name = str_of(e, "name").unwrap_or_default();
        let category = str_of(e, "cat").unwrap_or_default();
        match ph {
            "M" => {}
            "B" => {
                let ts = ts_of(e).ok_or("B event missing ts")?;
                *open.entry((pid, tid)).or_insert(0) += 1;
                stream.begin(lane, &name, &category, ts);
            }
            "E" => {
                let ts = ts_of(e).ok_or("E event missing ts")?;
                match open.get_mut(&(pid, tid)) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => return Err(format!("unmatched E event on lane {lane:?}")),
                }
                stream.end(lane, ts);
            }
            "i" => {
                let ts = ts_of(e).ok_or("i event missing ts")?;
                stream.instant(lane, &name, &category, ts);
            }
            "C" => {
                let ts = ts_of(e).ok_or("C event missing ts")?;
                let v = e["args"]["value"].as_f64().unwrap_or(0.0);
                stream.counter(pid, &name, ts, v);
            }
            "s" | "f" => {
                let ts = ts_of(e).ok_or("flow event missing ts")?;
                let id = e["id"].as_f64().map_or(0, |v| v as u64);
                if ph == "s" {
                    stream.flow_start(id, &name, lane, ts);
                } else {
                    stream.flow_end(id, &name, lane, ts);
                }
            }
            _ => {}
        }
    }
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::LaneId;

    fn sample_stream() -> EventStream {
        let mut s = EventStream::with_capacity(100);
        let gpu = LaneId::gpu(0, 1);
        s.set_lane_name(gpu, "node0", "gpu1");
        s.set_lane_name(LaneId::master(), "master", "controller");
        s.begin(gpu, "actor.train", "compute", 0.0);
        s.begin(gpu, "layer_fwd", "compute", 0.1);
        s.end(gpu, 0.4);
        s.end(gpu, 1.0);
        s.instant(gpu, "oom_check", "memory", 0.5);
        s.counter(0, "mem/node0/gpu1", 0.0, 11.5);
        s.flow_start(3, "req:actor.train", LaneId::master(), 0.0);
        s.flow_end(3, "req:actor.train", gpu, 1.0);
        s
    }

    #[test]
    fn export_parses_as_json_and_keeps_structure() {
        let s = sample_stream();
        let json = to_chrome_string(&s);
        let parsed: Value = serde_json::from_str(&json).unwrap();
        let events = parsed.as_array().unwrap();
        // 2 process + 2 thread metadata records precede the events.
        assert_eq!(events[0]["ph"].as_str(), Some("M"));
        let phases: Vec<&str> = events.iter().filter_map(|e| e["ph"].as_str()).collect();
        assert_eq!(phases.iter().filter(|&&p| p == "B").count(), 2);
        assert_eq!(phases.iter().filter(|&&p| p == "E").count(), 2);
        assert!(phases.contains(&"i"));
        assert!(phases.contains(&"C"));
        assert!(phases.contains(&"s"));
        assert!(phases.contains(&"f"));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let s = sample_stream();
        let parsed = to_chrome_value(&s);
        let begin = parsed
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["ph"].as_str() == Some("B") && e["name"].as_str() == Some("layer_fwd"))
            .unwrap();
        assert!((begin["ts"].as_f64().unwrap() - 0.1e6).abs() < 1e-6);
    }

    /// Structural event equality with timestamp tolerance: micros-to-secs
    /// conversion can differ from the original in the last float bit.
    fn approx_eq(a: &StreamEvent, b: &StreamEvent) -> bool {
        use StreamEvent::*;
        let close = |x: f64, y: f64| (x - y).abs() < 1e-9;
        match (a, b) {
            (
                Begin {
                    lane: l1,
                    name: n1,
                    category: c1,
                    ts: t1,
                },
                Begin {
                    lane: l2,
                    name: n2,
                    category: c2,
                    ts: t2,
                },
            ) => l1 == l2 && n1 == n2 && c1 == c2 && close(*t1, *t2),
            (End { lane: l1, ts: t1 }, End { lane: l2, ts: t2 }) => l1 == l2 && close(*t1, *t2),
            (
                Instant {
                    lane: l1,
                    name: n1,
                    ts: t1,
                    ..
                },
                Instant {
                    lane: l2,
                    name: n2,
                    ts: t2,
                    ..
                },
            ) => l1 == l2 && n1 == n2 && close(*t1, *t2),
            (
                Counter {
                    pid: p1,
                    track: k1,
                    ts: t1,
                    value: v1,
                },
                Counter {
                    pid: p2,
                    track: k2,
                    ts: t2,
                    value: v2,
                },
            ) => p1 == p2 && k1 == k2 && close(*t1, *t2) && v1 == v2,
            (
                FlowStart {
                    id: i1,
                    name: n1,
                    lane: l1,
                    ts: t1,
                },
                FlowStart {
                    id: i2,
                    name: n2,
                    lane: l2,
                    ts: t2,
                },
            )
            | (
                FlowEnd {
                    id: i1,
                    name: n1,
                    lane: l1,
                    ts: t1,
                },
                FlowEnd {
                    id: i2,
                    name: n2,
                    lane: l2,
                    ts: t2,
                },
            ) => i1 == i2 && n1 == n2 && l1 == l2 && close(*t1, *t2),
            _ => false,
        }
    }

    #[test]
    fn export_import_roundtrip_preserves_events_and_names() {
        let s = sample_stream();
        let back = from_chrome_value(&to_chrome_value(&s)).unwrap();
        assert_eq!(back.events().len(), s.events().len());
        for (a, b) in back.events().iter().zip(s.events()) {
            assert!(approx_eq(a, b), "{a:?} vs {b:?}");
        }
        let names: Vec<_> = back.process_names().collect();
        assert_eq!(names, s.process_names().collect::<Vec<_>>());
        let threads: Vec<_> = back.thread_names().collect();
        assert_eq!(threads, s.thread_names().collect::<Vec<_>>());
        assert!(back.check_invariants().is_ok());
    }

    #[test]
    fn import_rejects_malformed_traces() {
        assert!(from_chrome_value(&Value::from("nope")).is_err());
        let orphan_end = Value::Array(vec![obj(vec![
            ("ph", Value::from("E")),
            ("pid", Value::from(0u32)),
            ("tid", Value::from(0u32)),
            ("ts", Value::from(1.0)),
        ])]);
        let err = from_chrome_value(&orphan_end).unwrap_err();
        assert!(err.contains("unmatched"), "{err}");
    }

    #[test]
    fn hostile_labels_cannot_inject_fields() {
        let mut s = EventStream::with_capacity(10);
        let hostile = "x\",\"pid\":999,\"y\":\"";
        s.span(LaneId::gpu(0, 0), hostile, "compute", 0.0, 1.0);
        let parsed: Value = serde_json::from_str(&to_chrome_string(&s)).unwrap();
        let begin = &parsed.as_array().unwrap()[0];
        assert_eq!(begin["name"].as_str(), Some(hostile));
        assert_eq!(begin["pid"].as_u64(), Some(0));
    }
}
