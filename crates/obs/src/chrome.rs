//! Chrome/Perfetto trace exporter.
//!
//! Converts an [`EventStream`] into the Chrome Trace Event JSON-array format
//! (loadable at `chrome://tracing` and in the Perfetto UI). All string
//! content goes through `serde_json`, so arbitrary labels cannot break the
//! output — the hand-rolled string concatenation this replaces interpolated
//! labels unescaped.
//!
//! Mapping:
//!
//! | stream event        | chrome `ph` | notes                               |
//! |---------------------|-------------|-------------------------------------|
//! | `Begin` / `End`     | `B` / `E`   | nested spans per lane               |
//! | `Instant`           | `i`         | thread-scoped (`"s":"t"`)           |
//! | `Counter`           | `C`         | one track per counter name          |
//! | `FlowStart`/`FlowEnd` | `s` / `f` | `bp:"e"` binds to enclosing slice   |
//! | lane names          | `M`         | `process_name` / `thread_name`      |
//!
//! Virtual-clock seconds are converted to microseconds (the unit Chrome
//! expects in `ts`).

use serde::Value;

use crate::events::{EventStream, StreamEvent};

const SECS_TO_MICROS: f64 = 1e6;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Converts the stream to the Chrome trace event array as a JSON value.
///
/// Metadata events come first (so viewers name lanes before drawing), then
/// the recorded events in record order.
pub fn to_chrome_value(stream: &EventStream) -> Value {
    let mut events: Vec<Value> = Vec::with_capacity(stream.events().len() + 16);

    for (pid, name) in stream.process_names() {
        events.push(obj(vec![
            ("ph", Value::from("M")),
            ("name", Value::from("process_name")),
            ("pid", Value::from(pid)),
            ("args", obj(vec![("name", Value::from(name))])),
        ]));
    }
    for (pid, tid, name) in stream.thread_names() {
        events.push(obj(vec![
            ("ph", Value::from("M")),
            ("name", Value::from("thread_name")),
            ("pid", Value::from(pid)),
            ("tid", Value::from(tid)),
            ("args", obj(vec![("name", Value::from(name))])),
        ]));
    }

    for event in stream.events() {
        events.push(match event {
            StreamEvent::Begin {
                lane,
                name,
                category,
                ts,
            } => obj(vec![
                ("ph", Value::from("B")),
                ("name", Value::from(name.as_str())),
                ("cat", Value::from(category.as_str())),
                ("pid", Value::from(lane.pid)),
                ("tid", Value::from(lane.tid)),
                ("ts", Value::from(ts * SECS_TO_MICROS)),
            ]),
            StreamEvent::End { lane, ts } => obj(vec![
                ("ph", Value::from("E")),
                ("pid", Value::from(lane.pid)),
                ("tid", Value::from(lane.tid)),
                ("ts", Value::from(ts * SECS_TO_MICROS)),
            ]),
            StreamEvent::Instant {
                lane,
                name,
                category,
                ts,
            } => obj(vec![
                ("ph", Value::from("i")),
                ("name", Value::from(name.as_str())),
                ("cat", Value::from(category.as_str())),
                ("pid", Value::from(lane.pid)),
                ("tid", Value::from(lane.tid)),
                ("ts", Value::from(ts * SECS_TO_MICROS)),
                ("s", Value::from("t")),
            ]),
            StreamEvent::Counter {
                pid,
                track,
                ts,
                value,
            } => obj(vec![
                ("ph", Value::from("C")),
                ("name", Value::from(track.as_str())),
                ("pid", Value::from(*pid)),
                ("ts", Value::from(ts * SECS_TO_MICROS)),
                ("args", obj(vec![("value", Value::from(*value))])),
            ]),
            StreamEvent::FlowStart { id, name, lane, ts } => obj(vec![
                ("ph", Value::from("s")),
                ("name", Value::from(name.as_str())),
                ("cat", Value::from("flow")),
                ("id", Value::from(*id)),
                ("pid", Value::from(lane.pid)),
                ("tid", Value::from(lane.tid)),
                ("ts", Value::from(ts * SECS_TO_MICROS)),
            ]),
            StreamEvent::FlowEnd { id, name, lane, ts } => obj(vec![
                ("ph", Value::from("f")),
                ("name", Value::from(name.as_str())),
                ("cat", Value::from("flow")),
                ("id", Value::from(*id)),
                ("bp", Value::from("e")),
                ("pid", Value::from(lane.pid)),
                ("tid", Value::from(lane.tid)),
                ("ts", Value::from(ts * SECS_TO_MICROS)),
            ]),
        });
    }

    Value::Array(events)
}

/// Converts the stream to a compact Chrome trace JSON string.
pub fn to_chrome_string(stream: &EventStream) -> String {
    serde_json::to_string(&to_chrome_value(stream)).expect("Value serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::LaneId;

    fn sample_stream() -> EventStream {
        let mut s = EventStream::with_capacity(100);
        let gpu = LaneId::gpu(0, 1);
        s.set_lane_name(gpu, "node0", "gpu1");
        s.set_lane_name(LaneId::master(), "master", "controller");
        s.begin(gpu, "actor.train", "compute", 0.0);
        s.begin(gpu, "layer_fwd", "compute", 0.1);
        s.end(gpu, 0.4);
        s.end(gpu, 1.0);
        s.instant(gpu, "oom_check", "memory", 0.5);
        s.counter(0, "mem/node0/gpu1", 0.0, 11.5);
        s.flow_start(3, "req:actor.train", LaneId::master(), 0.0);
        s.flow_end(3, "req:actor.train", gpu, 1.0);
        s
    }

    #[test]
    fn export_parses_as_json_and_keeps_structure() {
        let s = sample_stream();
        let json = to_chrome_string(&s);
        let parsed: Value = serde_json::from_str(&json).unwrap();
        let events = parsed.as_array().unwrap();
        // 2 process + 2 thread metadata records precede the events.
        assert_eq!(events[0]["ph"].as_str(), Some("M"));
        let phases: Vec<&str> = events.iter().filter_map(|e| e["ph"].as_str()).collect();
        assert_eq!(phases.iter().filter(|&&p| p == "B").count(), 2);
        assert_eq!(phases.iter().filter(|&&p| p == "E").count(), 2);
        assert!(phases.contains(&"i"));
        assert!(phases.contains(&"C"));
        assert!(phases.contains(&"s"));
        assert!(phases.contains(&"f"));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let s = sample_stream();
        let parsed = to_chrome_value(&s);
        let begin = parsed
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["ph"].as_str() == Some("B") && e["name"].as_str() == Some("layer_fwd"))
            .unwrap();
        assert!((begin["ts"].as_f64().unwrap() - 0.1e6).abs() < 1e-6);
    }

    #[test]
    fn hostile_labels_cannot_inject_fields() {
        let mut s = EventStream::with_capacity(10);
        let hostile = "x\",\"pid\":999,\"y\":\"";
        s.span(LaneId::gpu(0, 0), hostile, "compute", 0.0, 1.0);
        let parsed: Value = serde_json::from_str(&to_chrome_string(&s)).unwrap();
        let begin = &parsed.as_array().unwrap()[0];
        assert_eq!(begin["name"].as_str(), Some(hostile));
        assert_eq!(begin["pid"].as_u64(), Some(0));
    }
}
