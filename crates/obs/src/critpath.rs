//! Critical-path extraction from an [`EventStream`].
//!
//! The paper's performance argument is about *where the makespan comes
//! from*: parameter reallocation wins by shortening the chain of spans that
//! actually gates the end-to-end time, not by shaving concurrent work that
//! was hidden anyway. This module reconstructs closed spans from a stream
//! and walks the timeline backwards from the makespan, at every point
//! following the latest-finishing span that could have gated it. The result
//! tiles `[0, makespan]` exactly with *span* segments (some recorded span
//! was still running) and *wait* segments (nothing was running anywhere —
//! pure schedule gaps), so
//!
//! ```text
//! span_seconds + wait_seconds == makespan
//! ```
//!
//! holds by construction and the critical path can never exceed the
//! makespan. Aggregating span segments by `(name, category)` yields the
//! top-k table the `real profile` report prints.

use crate::events::{EventStream, LaneId, StreamEvent};
use serde::{Deserialize, Serialize};

/// Tolerance for float comparisons on the virtual clock.
pub const EPS: f64 = 1e-9;

/// A closed span reconstructed from a stream's begin/end events.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Lane the span was recorded on.
    pub lane: LaneId,
    /// Span name (e.g. `actor_gen#0`).
    pub name: String,
    /// Span category (e.g. `compute`, `call/gen`).
    pub category: String,
    /// Start time (virtual seconds).
    pub start: f64,
    /// End time (virtual seconds).
    pub end: f64,
    /// Nesting depth on its lane at begin time (0 = outermost).
    pub depth: u32,
}

impl Span {
    /// Wall duration of the span.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Reconstructs every *closed* span from the stream, in end order of the
/// per-lane stacks (record order of the `End` events). Spans left open and
/// events other than `Begin`/`End` are ignored.
pub fn reconstruct_spans(stream: &EventStream) -> Vec<Span> {
    let mut stacks: std::collections::BTreeMap<LaneId, Vec<(String, String, f64, u32)>> =
        std::collections::BTreeMap::new();
    let mut spans = Vec::new();
    for event in stream.events() {
        match event {
            StreamEvent::Begin {
                lane,
                name,
                category,
                ts,
            } => {
                let stack = stacks.entry(*lane).or_default();
                let depth = stack.len() as u32;
                stack.push((name.clone(), category.clone(), *ts, depth));
            }
            StreamEvent::End { lane, ts } => {
                if let Some((name, category, start, depth)) =
                    stacks.get_mut(lane).and_then(Vec::pop)
                {
                    spans.push(Span {
                        lane: *lane,
                        name,
                        category,
                        start,
                        end: *ts,
                        depth,
                    });
                }
            }
            _ => {}
        }
    }
    spans
}

/// The makespan implied by a span set: the latest end time (0 when empty).
pub fn makespan(spans: &[Span]) -> f64 {
    spans.iter().fold(0.0, |m, s| m.max(s.end))
}

/// One segment of the critical path, in time order.
#[derive(Debug, Clone, PartialEq)]
pub struct CritSegment {
    /// Index into the span set, or `None` for a wait (schedule gap).
    pub span: Option<usize>,
    /// Segment start.
    pub start: f64,
    /// Segment end.
    pub end: f64,
}

impl CritSegment {
    /// Segment duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The critical path of a run: segments tiling `[0, makespan]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The makespan the path was extracted against.
    pub makespan: f64,
    /// Segments in increasing time order; starts at 0, ends at makespan.
    pub segments: Vec<CritSegment>,
    /// Seconds covered by span segments.
    pub span_seconds: f64,
    /// Seconds covered by wait segments (no span running anywhere).
    pub wait_seconds: f64,
}

/// One aggregated critical-path entry: total gating seconds attributed to
/// spans sharing a `(name, category)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CritEntry {
    /// Span name.
    pub name: String,
    /// Span category.
    pub category: String,
    /// Seconds this entry spends on the critical path.
    pub seconds: f64,
    /// Number of path segments aggregated into this entry.
    pub count: u64,
}

impl CriticalPath {
    /// Extracts the critical path from a span set.
    ///
    /// Walking backwards from the makespan, the algorithm repeatedly picks
    /// the span covering the instant just before the current frontier
    /// (`start < t`, `end >= t`): the most recently started such span is
    /// the most specific work gating the frontier, so the path descends
    /// into leaf kernels instead of stopping at enclosing call spans. The
    /// segment `[span.start, t]` joins the path and the frontier jumps to
    /// the span's start. When nothing was running, the gap back to the
    /// nearest earlier span end becomes a wait segment. Ties are broken
    /// deterministically (latest start, then deepest nesting, then
    /// earliest end, then lane, then name), so the path is byte-stable
    /// across runs of the same trace.
    pub fn extract(spans: &[Span], makespan: f64) -> Self {
        // Candidate order: latest start first; the first covering span in
        // this order is the pick. Zero-duration spans never gate anything.
        let mut order: Vec<usize> = (0..spans.len())
            .filter(|&i| spans[i].duration() > EPS)
            .collect();
        order.sort_by(|&a, &b| {
            let (a, b) = (&spans[a], &spans[b]);
            b.start
                .partial_cmp(&a.start)
                .expect("span times are finite")
                .then(b.depth.cmp(&a.depth))
                .then(a.end.partial_cmp(&b.end).expect("finite"))
                .then(a.lane.cmp(&b.lane))
                .then(a.name.cmp(&b.name))
        });
        // suffix_max_end[i] = max end over order[i..]; lets the scan stop
        // early when no remaining candidate can cover the frontier.
        let mut suffix_max_end = vec![f64::NEG_INFINITY; order.len() + 1];
        for i in (0..order.len()).rev() {
            suffix_max_end[i] = suffix_max_end[i + 1].max(spans[order[i]].end);
        }
        // Sorted span ends, for locating the previous activity across a gap.
        let mut ends: Vec<f64> = order.iter().map(|&i| spans[i].end).collect();
        ends.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

        let mut segments: Vec<CritSegment> = Vec::new();
        let mut t = makespan;
        let mut cursor = 0; // first candidate with start < t - EPS
        while t > EPS {
            while cursor < order.len() && spans[order[cursor]].start >= t - EPS {
                cursor += 1;
            }
            let mut pick = None;
            let mut i = cursor;
            while i < order.len() && suffix_max_end[i] >= t - EPS {
                if spans[order[i]].end >= t - EPS {
                    pick = Some(order[i]);
                    break;
                }
                i += 1;
            }
            match pick {
                Some(i) => {
                    let s = &spans[i];
                    segments.push(CritSegment {
                        span: Some(i),
                        start: s.start.max(0.0),
                        end: t,
                    });
                    t = s.start.max(0.0);
                }
                None => {
                    // Nothing was running: wait back to the latest span end
                    // strictly before the frontier (or to time zero).
                    let prev = ends
                        .partition_point(|&e| e < t - EPS)
                        .checked_sub(1)
                        .map_or(0.0, |j| ends[j].max(0.0));
                    segments.push(CritSegment {
                        span: None,
                        start: prev,
                        end: t,
                    });
                    t = prev;
                }
            }
        }
        segments.reverse();
        let span_seconds = segments
            .iter()
            .filter(|g| g.span.is_some())
            .map(CritSegment::duration)
            .sum();
        let wait_seconds = segments
            .iter()
            .filter(|g| g.span.is_none())
            .map(CritSegment::duration)
            .sum();
        Self {
            makespan,
            segments,
            span_seconds,
            wait_seconds,
        }
    }

    /// Aggregates span segments by `(name, category)` and returns the `k`
    /// entries gating the most time, largest first (name-ordered on ties).
    pub fn top_spans(&self, spans: &[Span], k: usize) -> Vec<CritEntry> {
        let mut agg: std::collections::BTreeMap<(String, String), (f64, u64)> =
            std::collections::BTreeMap::new();
        for seg in &self.segments {
            if let Some(i) = seg.span {
                let s = &spans[i];
                let e = agg
                    .entry((s.name.clone(), s.category.clone()))
                    .or_insert((0.0, 0));
                e.0 += seg.duration();
                e.1 += 1;
            }
        }
        let mut entries: Vec<CritEntry> = agg
            .into_iter()
            .map(|((name, category), (seconds, count))| CritEntry {
                name,
                category,
                seconds,
                count,
            })
            .collect();
        entries.sort_by(|a, b| {
            b.seconds
                .partial_cmp(&a.seconds)
                .expect("finite")
                .then_with(|| a.name.cmp(&b.name))
                .then_with(|| a.category.cmp(&b.category))
        });
        entries.truncate(k);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(lane: LaneId, name: &str, cat: &str, start: f64, end: f64, depth: u32) -> Span {
        Span {
            lane,
            name: name.into(),
            category: cat.into(),
            start,
            end,
            depth,
        }
    }

    #[test]
    fn reconstruct_handles_nesting_and_open_spans() {
        let mut s = EventStream::with_capacity(0);
        let lane = LaneId::gpu(0, 0);
        s.begin(lane, "outer", "compute", 0.0);
        s.begin(lane, "inner", "tp-comm", 1.0);
        s.end(lane, 2.0);
        s.end(lane, 3.0);
        s.begin(lane, "dangling", "compute", 4.0); // left open: ignored
        let spans = reconstruct_spans(&s);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].depth, 0);
        assert_eq!(makespan(&spans), 3.0);
    }

    #[test]
    fn serial_chain_is_fully_on_path() {
        let l = LaneId::gpu(0, 0);
        let spans = vec![
            span(l, "a", "compute", 0.0, 2.0, 0),
            span(l, "b", "compute", 2.0, 5.0, 0),
        ];
        let cp = CriticalPath::extract(&spans, 5.0);
        assert_eq!(cp.segments.len(), 2);
        assert!((cp.span_seconds - 5.0).abs() < 1e-9);
        assert!(cp.wait_seconds.abs() < 1e-9);
    }

    #[test]
    fn waits_fill_gaps_and_conserve_makespan() {
        let l = LaneId::gpu(0, 0);
        // Work in [1, 2] and [4, 6]; gaps [0,1] and [2,4] are waits.
        let spans = vec![
            span(l, "a", "compute", 1.0, 2.0, 0),
            span(l, "b", "compute", 4.0, 6.0, 0),
        ];
        let cp = CriticalPath::extract(&spans, 6.0);
        assert!((cp.span_seconds - 3.0).abs() < 1e-9);
        assert!((cp.wait_seconds - 3.0).abs() < 1e-9);
        assert!((cp.span_seconds + cp.wait_seconds - 6.0).abs() < 1e-9);
        // Segments tile [0, makespan] in order.
        assert!((cp.segments[0].start).abs() < 1e-9);
        for w in cp.segments.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-9);
        }
        assert!((cp.segments.last().unwrap().end - 6.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_slack_stays_off_path() {
        // GPU 1's short span is hidden behind GPU 0's long one.
        let spans = vec![
            span(LaneId::gpu(0, 0), "long", "compute", 0.0, 10.0, 0),
            span(LaneId::gpu(0, 1), "short", "compute", 2.0, 4.0, 0),
        ];
        let cp = CriticalPath::extract(&spans, 10.0);
        let top = cp.top_spans(&spans, 5);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].name, "long");
        assert!((top[0].seconds - 10.0).abs() < 1e-9);
    }

    #[test]
    fn prefers_deepest_span_on_equal_end() {
        // A leaf kernel inside an enclosing call, both ending at 4: the
        // path should name the leaf (more specific attribution).
        let l = LaneId::gpu(0, 0);
        let spans = vec![
            span(l, "call", "call/gen", 0.0, 4.0, 0),
            span(l, "kernel", "compute", 3.0, 4.0, 1),
        ];
        let cp = CriticalPath::extract(&spans, 4.0);
        let names: Vec<&str> = cp
            .segments
            .iter()
            .filter_map(|g| g.span.map(|i| spans[i].name.as_str()))
            .collect();
        assert_eq!(names, vec!["call", "kernel"]);
    }

    #[test]
    fn zero_duration_spans_cannot_stall_extraction() {
        let l = LaneId::gpu(0, 0);
        let spans = vec![
            span(l, "tick", "compute", 5.0, 5.0, 0),
            span(l, "work", "compute", 0.0, 5.0, 0),
        ];
        let cp = CriticalPath::extract(&spans, 5.0);
        assert!((cp.span_seconds - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stream_yields_empty_path() {
        let cp = CriticalPath::extract(&[], 0.0);
        assert!(cp.segments.is_empty());
        assert_eq!(cp.span_seconds + cp.wait_seconds, 0.0);
    }
}
