//! Speculation-aware plan search: makes draft/verify decode a searchable
//! plan dimension on top of the assignment MCMC.
//!
//! The chain here proposes four move kinds — re-draw a call's assignment
//! (the classic move), **toggle** speculation on a generation call, **re-draw
//! the draft/`k`** from the menu, and **move the draft mesh** — and prices
//! every proposal through the shared [`PlanPricer`] memo, so only the touched
//! generation call is re-priced. A deterministic greedy polish then sweeps
//! every `(draft, k, placement)` option per generation call and *strips any
//! speculation choice that does not strictly beat plain decode*: at low
//! acceptance the final plan is guaranteed non-speculative, because a
//! speculative option is only kept when it strictly lowers the plan cost.
//!
//! [`mcmc::run_chain`](crate::mcmc) itself is untouched — spec-free searches
//! remain bit-identical to their pre-speculation behavior.

use crate::mcmc::{self, McmcConfig, SearchResult};
use crate::space::SearchSpace;
use real_cluster::{ClusterSpec, DeviceMesh};
use real_dataflow::{CallAssignment, CallId, CallType, ExecutionPlan, SpecChoice};
use real_estimator::{Estimator, MemoStats, PlanPricer};
use real_model::specdec::{AcceptanceCurve, SpecDecodeConfig};
use real_model::{ModelSpec, ParallelStrategy};
use real_profiler::{calibrated_acceptance, SpecTask};
use real_util::DeterministicRng;
use std::time::Instant;

/// Cap on the draft mesh width: drafts are small, so they never need more
/// than one node — this keeps the speculation menu compact.
const MAX_DRAFT_GPUS: u32 = 8;

/// The discrete menu of speculation choices the search may attach to a
/// generation call: candidate draft models, speculation lengths, and draft
/// placements (single-node meshes with TP-only strategies — drafts are too
/// small to pipeline). Acceptance curves come from the profiler grid's
/// calibrated fixtures per `(draft, target, task)` unless overridden with an
/// explicit curve.
#[derive(Debug, Clone)]
pub struct SpecMenu {
    drafts: Vec<ModelSpec>,
    ks: Vec<u32>,
    task: SpecTask,
    curve: Option<AcceptanceCurve>,
    placements: Vec<CallAssignment>,
}

impl SpecMenu {
    /// Builds the menu: draft placements are every single-node mesh of the
    /// cluster (up to `MAX_DRAFT_GPUS` wide) with TP-only strategies.
    pub fn build(
        cluster: &ClusterSpec,
        drafts: Vec<ModelSpec>,
        ks: Vec<u32>,
        task: SpecTask,
    ) -> Self {
        let mut placements = Vec::new();
        for mesh in DeviceMesh::enumerate(cluster) {
            if mesh.n_nodes() != 1 || mesh.n_gpus() > MAX_DRAFT_GPUS {
                continue;
            }
            for s in ParallelStrategy::enumerate(mesh.n_gpus(), mesh.n_gpus(), 1, &[1]) {
                if let Ok(a) = CallAssignment::new(mesh, s) {
                    placements.push(a);
                }
            }
        }
        Self {
            drafts,
            ks,
            task,
            curve: None,
            placements,
        }
    }

    /// A menu offering nothing: [`search_speculative`] with it degenerates
    /// to the plain assignment search (used by callers that want the shared
    /// memo path of [`search_speculative_with_memo`] without speculation).
    pub fn empty() -> Self {
        Self {
            drafts: Vec::new(),
            ks: Vec::new(),
            task: SpecTask::RlhfRollout,
            curve: None,
            placements: Vec::new(),
        }
    }

    /// The default menu: the 1B and 7B drafts with `k ∈ {2, 4, 6, 8}`,
    /// calibrated for RLHF rollout sampling.
    pub fn standard(cluster: &ClusterSpec) -> Self {
        Self::build(
            cluster,
            vec![ModelSpec::llama3_1b(), ModelSpec::llama3_7b()],
            vec![2, 4, 6, 8],
            SpecTask::RlhfRollout,
        )
    }

    /// Replaces the calibrated acceptance curves with an explicit one (e.g.
    /// a measured per-deployment curve, or a constant for ablations).
    #[must_use]
    pub fn with_curve(mut self, curve: AcceptanceCurve) -> Self {
        self.curve = Some(curve);
        self
    }

    /// Whether the menu offers nothing (no drafts, lengths, or placements).
    pub fn is_empty(&self) -> bool {
        self.drafts.is_empty() || self.ks.is_empty() || self.placements.is_empty()
    }

    /// The acceptance curve used for `draft` speculating for `target`.
    fn curve_for(&self, draft: &ModelSpec, target: &ModelSpec) -> AcceptanceCurve {
        self.curve
            .clone()
            .unwrap_or_else(|| calibrated_acceptance(draft, target, self.task))
    }

    /// All valid speculation choices for a call whose model is `target`:
    /// drafts strictly smaller than the target, each `k`, each placement the
    /// draft's architecture supports. Deterministic order.
    pub fn options(&self, target: &ModelSpec) -> Vec<SpecChoice> {
        let mut out = Vec::new();
        for draft in &self.drafts {
            if draft.param_count() >= target.param_count() {
                continue;
            }
            let curve = self.curve_for(draft, target);
            for &k in &self.ks {
                for a in &self.placements {
                    let choice = SpecChoice {
                        config: SpecDecodeConfig {
                            draft_model: draft.clone(),
                            speculation_len: k,
                            acceptance_curve: curve.clone(),
                        },
                        assignment: *a,
                    };
                    if choice.validate().is_ok() {
                        out.push(choice);
                    }
                }
            }
        }
        out
    }
}

/// Result of [`search_speculative`]: the spec-free base search plus the
/// speculation-refined incumbent.
#[derive(Debug, Clone)]
pub struct SpecSearchResult {
    /// The plain assignment search the speculation chain started from.
    pub base: SearchResult,
    /// Best plan found, possibly with speculation attached.
    pub best_plan: ExecutionPlan,
    /// Estimated `TimeCost` of [`Self::best_plan`].
    pub best_time_cost: f64,
    /// Whether the best plan fits device memory (draft residency included).
    pub feasible: bool,
    /// Speculation-chain proposals evaluated (excludes the base search).
    pub spec_steps: u64,
    /// Speculation-chain proposals accepted.
    pub spec_accepted: u64,
    /// Memo counters of the speculation chain's pricer.
    pub memo: MemoStats,
}

impl SpecSearchResult {
    /// Ratio `base/spec` end-to-end (> 1 when speculation helped).
    pub fn speedup_over_base(&self) -> f64 {
        self.base.best_time_cost / self.best_time_cost
    }
}

/// Runs the plain assignment search, then a Metropolis–Hastings chain mixing
/// assignment moves with speculation moves (toggle / re-draw draft and `k` /
/// move the draft mesh), and finishes with a deterministic greedy polish
/// that, per generation call, keeps the single best menu option only if it
/// strictly beats plain decode. With an empty menu (or no generation calls)
/// the result is exactly the base search's plan.
pub fn search_speculative(
    est: &Estimator,
    space: &SearchSpace,
    menu: &SpecMenu,
    cfg: &McmcConfig,
) -> SpecSearchResult {
    run_speculative(est, space, menu, cfg, None)
}

/// [`search_speculative`] sharing a caller-owned
/// [`CostMemo`](real_estimator::CostMemo) — the hook
/// behind cross-search memo persistence (`real plan --memo-in/--memo-out`).
/// Both the base assignment search and the speculation chain price through
/// `memo`, so a warm cache restored from a snapshot skips re-pricing any
/// `(call, assignment)` it has seen in an earlier search. Memoization is
/// exact, so the chosen plan is bit-identical to a cold
/// [`search_speculative`] run.
pub fn search_speculative_with_memo(
    est: &Estimator,
    space: &SearchSpace,
    menu: &SpecMenu,
    cfg: &McmcConfig,
    memo: &mut real_estimator::CostMemo,
) -> SpecSearchResult {
    run_speculative(est, space, menu, cfg, Some(memo))
}

fn run_speculative(
    est: &Estimator,
    space: &SearchSpace,
    menu: &SpecMenu,
    cfg: &McmcConfig,
    external_memo: Option<&mut real_estimator::CostMemo>,
) -> SpecSearchResult {
    let mut external_memo = external_memo;
    let base = match &mut external_memo {
        Some(memo) => mcmc::search_with_memo(est, space, cfg, memo),
        None => mcmc::search(est, space, cfg),
    };
    let graph = est.graph();
    let gen_calls: Vec<CallId> = graph
        .iter()
        .filter(|(_, c)| matches!(c.call_type, CallType::Generate { .. }))
        .map(|(id, _)| id)
        .collect();
    let options: Vec<Vec<SpecChoice>> = gen_calls
        .iter()
        .map(|&id| menu.options(&graph.call(id).model))
        .collect();

    let mut pricer = match &mut external_memo {
        Some(memo) => PlanPricer::with_memo(est, std::mem::take(*memo)),
        None => PlanPricer::new(est),
    };
    let mut current = base.best_plan.clone();
    let (mut current_cost, _) = pricer.cost_checked(&current);
    let mut best = current.clone();
    let mut best_cost = current_cost;
    let mut spec_steps = 0u64;
    let mut spec_accepted = 0u64;

    let any_options = options.iter().any(|o| !o.is_empty());
    if any_options {
        let mut rng = DeterministicRng::from_seed(cfg.seed).derive("specsearch");
        let start = Instant::now();
        for step in 0..cfg.max_steps {
            if step % 64 == 0 && start.elapsed() >= cfg.time_limit {
                break;
            }
            let proposal = match rng.index(4) {
                // Classic move: re-draw one call's assignment (speculation
                // choices ride along unchanged).
                0 | 1 => {
                    let call = rng.index(space.n_calls());
                    let opts = space.options(call);
                    let a = opts[rng.index(opts.len())];
                    match current.with_assignment(CallId(call), a) {
                        Ok(p) => p,
                        Err(_) => continue,
                    }
                }
                // Speculation on / re-drawn from the menu.
                2 => {
                    let gi = rng.index(gen_calls.len());
                    let opts = &options[gi];
                    if opts.is_empty() {
                        continue;
                    }
                    let choice = opts[rng.index(opts.len())].clone();
                    match current.with_spec(gen_calls[gi], Some(choice)) {
                        Ok(p) => p,
                        Err(_) => continue,
                    }
                }
                // Speculation off.
                _ => {
                    let gi = rng.index(gen_calls.len());
                    match current.with_spec(gen_calls[gi], None) {
                        Ok(p) => p,
                        Err(_) => continue,
                    }
                }
            };
            spec_steps += 1;
            let (cost, _) = pricer.cost_checked(&proposal);
            let progress = step as f64 / cfg.max_steps as f64;
            let beta = cfg.beta * (1.0 + 3.0 * progress);
            let delta = (cost - current_cost) / current_cost.max(f64::MIN_POSITIVE);
            if rng.uniform() < (-beta * delta).exp().min(1.0) {
                spec_accepted += 1;
                current = proposal;
                current_cost = cost;
                if cost < best_cost {
                    best = current.clone();
                    best_cost = cost;
                }
            }
        }
    }

    // Greedy polish: per generation call, compare plain decode against every
    // menu option and keep speculation only on a strict improvement. The
    // adopted candidate never costs more than the incumbent (the incumbent's
    // own choice is in the scan), so adoption is unconditional; ties favor
    // plain decode, which strips non-improving speculation.
    let mut improved = true;
    let mut sweeps = 0;
    while improved && sweeps < 4 {
        improved = false;
        sweeps += 1;
        for (gi, &id) in gen_calls.iter().enumerate() {
            let mut chosen = best
                .with_spec(id, None)
                .expect("removing speculation always validates");
            let (mut chosen_cost, _) = pricer.cost_checked(&chosen);
            for c in &options[gi] {
                let cand = best
                    .with_spec(id, Some(c.clone()))
                    .expect("menu choices validate");
                let (cost, _) = pricer.cost_checked(&cand);
                if cost < chosen_cost {
                    chosen = cand;
                    chosen_cost = cost;
                }
            }
            if chosen_cost < best_cost {
                improved = true;
            }
            best = chosen;
            best_cost = chosen_cost;
        }
    }

    let best_time_cost = pricer.time_cost(&best);
    let feasible = pricer.mem_ok(&best);
    let memo = pricer.memo_stats();
    if let Some(m) = external_memo {
        *m = pricer.into_memo();
    }
    SpecSearchResult {
        base,
        best_plan: best,
        best_time_cost,
        feasible,
        spec_steps,
        spec_accepted,
        memo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::PruneLevel;
    use real_dataflow::algo::{ppo, RlhfConfig};
    use real_profiler::{ProfileConfig, Profiler};
    use std::time::Duration;

    fn setup() -> (ClusterSpec, Estimator, SearchSpace) {
        let cluster = ClusterSpec::h100(2);
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        // Rollout-heavy RLHF: long generations make decode dominate, the
        // regime where speculative decoding pays end-to-end.
        let rlhf = RlhfConfig {
            gen_len: 3072,
            prompt_len: 256,
            ..RlhfConfig::instruct_gpt(32)
        };
        let graph = ppo(&actor, &critic, &rlhf);
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 11);
        let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
        let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
        let space = SearchSpace::build(&cluster, &graph, PruneLevel::Aggressive);
        (cluster, est, space)
    }

    fn cfg(seed: u64) -> McmcConfig {
        McmcConfig {
            max_steps: 2_000,
            time_limit: Duration::from_secs(60),
            seed,
            record_trace: false,
            ..McmcConfig::default()
        }
    }

    fn menu_at(cluster: &ClusterSpec, alpha: f64) -> SpecMenu {
        SpecMenu::build(
            cluster,
            vec![ModelSpec::llama3_1b()],
            vec![2, 4, 6, 8],
            SpecTask::RlhfRollout,
        )
        .with_curve(AcceptanceCurve::Constant(alpha))
    }

    #[test]
    fn menu_options_are_valid_and_nonempty() {
        let (cluster, _, _) = setup();
        let menu = menu_at(&cluster, 0.8);
        let opts = menu.options(&ModelSpec::llama3_7b());
        assert!(!opts.is_empty());
        for c in &opts {
            c.validate().unwrap();
        }
        // A draft never speculates for itself or anything smaller.
        assert!(menu.options(&ModelSpec::llama3_1b()).is_empty());
    }

    #[test]
    fn high_acceptance_finds_speculative_speedup() {
        let (cluster, est, space) = setup();
        let menu = menu_at(&cluster, 0.8);
        let r = search_speculative(&est, &space, &menu, &cfg(5));
        assert!(r.feasible);
        assert!(
            r.best_plan.has_speculation(),
            "α=0.8 should make speculation worthwhile"
        );
        assert!(
            r.speedup_over_base() >= 1.25,
            "expected ≥25% end-to-end improvement at α=0.8, got {:.3}x",
            r.speedup_over_base()
        );
    }

    #[test]
    fn low_acceptance_selects_plain_decode() {
        let (cluster, est, space) = setup();
        let menu = menu_at(&cluster, 0.3);
        let r = search_speculative(&est, &space, &menu, &cfg(5));
        assert!(
            !r.best_plan.has_speculation(),
            "α=0.3 speculation must be stripped by the polish"
        );
        assert!(r.best_time_cost <= r.base.best_time_cost + 1e-9);
    }

    #[test]
    fn empty_menu_reduces_to_base_search() {
        let (cluster, est, space) = setup();
        let menu = SpecMenu::build(&cluster, vec![], vec![4], SpecTask::RlhfRollout);
        assert!(menu.is_empty());
        let r = search_speculative(&est, &space, &menu, &cfg(5));
        assert_eq!(r.spec_steps, 0);
        assert!(!r.best_plan.has_speculation());
        assert_eq!(
            serde_json::to_string(&r.best_plan).unwrap(),
            serde_json::to_string(&r.base.best_plan).unwrap()
        );
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let (cluster, est, space) = setup();
        let menu = menu_at(&cluster, 0.8);
        let a = search_speculative(&est, &space, &menu, &cfg(7));
        let b = search_speculative(&est, &space, &menu, &cfg(7));
        assert_eq!(
            serde_json::to_string(&a.best_plan).unwrap(),
            serde_json::to_string(&b.best_plan).unwrap()
        );
        assert_eq!(a.best_time_cost.to_bits(), b.best_time_cost.to_bits());
        assert_eq!(a.spec_steps, b.spec_steps);
        assert_eq!(a.spec_accepted, b.spec_accepted);
    }

    #[test]
    fn warm_memo_reuses_entries_and_picks_the_identical_plan() {
        let (cluster, est, space) = setup();
        let menu = menu_at(&cluster, 0.8);
        // Cold search, persisting the memo through a snapshot round-trip —
        // the search-level half of `real plan --memo-out` / `--memo-in`.
        let mut memo = real_estimator::CostMemo::new();
        let cold = search_speculative_with_memo(&est, &space, &menu, &cfg(5), &mut memo);
        let ctx = est.context_fingerprint();
        let snap = memo.snapshot(ctx);
        assert!(snap.n_entries() > 0);

        let mut warm_memo = real_estimator::CostMemo::from_snapshot(&snap, ctx)
            .expect("same pricing context restores");
        let warm = search_speculative_with_memo(&est, &space, &menu, &cfg(5), &mut warm_memo);
        // Memoization is exact: warm and cold searches pick the same plan
        // at the same cost...
        assert_eq!(
            serde_json::to_string(&cold.best_plan).unwrap(),
            serde_json::to_string(&warm.best_plan).unwrap()
        );
        assert_eq!(cold.best_time_cost.to_bits(), warm.best_time_cost.to_bits());
        // ...and the shared-memo path matches the memo-free one too.
        let plain = search_speculative(&est, &space, &menu, &cfg(5));
        assert_eq!(
            serde_json::to_string(&plain.best_plan).unwrap(),
            serde_json::to_string(&cold.best_plan).unwrap()
        );
        // The warm run actually hit the cache.
        assert!(warm.base.memo.hits > 0 || warm.memo.hits > 0);
        // A different pricing context refuses the snapshot (cold start).
        assert!(real_estimator::CostMemo::from_snapshot(&snap, ctx ^ 1).is_none());
    }

    #[test]
    fn calibrated_curves_flow_through_the_menu() {
        let (cluster, _, _) = setup();
        let menu = SpecMenu::standard(&cluster);
        let opts = menu.options(&ModelSpec::llama3_70b());
        assert!(!opts.is_empty());
        // Calibrated curves are per-position, not constant.
        assert!(opts
            .iter()
            .any(|c| matches!(c.config.acceptance_curve, AcceptanceCurve::PerPosition(_))));
    }
}
