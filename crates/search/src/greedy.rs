//! The §5.2 greedy initial solution: independently pick each call's option
//! with the minimum isolated duration. The paper notes this plan "can be
//! sub-optimal due to the excessive memory allocation on devices and the
//! lack of overlap between different model function calls" — it is only the
//! Markov chain's starting point.

use crate::space::SearchSpace;
use real_dataflow::{CallId, ExecutionPlan};
use real_estimator::Estimator;

/// Builds the greedy plan `p0`: per call, the fastest isolated option.
///
/// # Panics
///
/// Panics if the space and estimator disagree on the call count, or if the
/// resulting plan fails validation (the space guarantees it cannot).
pub fn greedy_plan(est: &Estimator, space: &SearchSpace) -> ExecutionPlan {
    let graph = est.graph();
    assert_eq!(
        space.n_calls(),
        graph.n_calls(),
        "space/graph call count mismatch"
    );
    let mut assignments = Vec::with_capacity(graph.n_calls());
    for call in 0..graph.n_calls() {
        let id = CallId(call);
        let best = space
            .options(call)
            .iter()
            .min_by(|a, b| {
                est.call_duration(id, a)
                    .partial_cmp(&est.call_duration(id, b))
                    .expect("durations are finite")
            })
            .expect("search space guarantees non-empty option lists");
        assignments.push(*best);
    }
    ExecutionPlan::new(graph, est.cluster(), assignments)
        .expect("options from the search space always validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::PruneLevel;
    use real_cluster::ClusterSpec;
    use real_dataflow::algo::{ppo, RlhfConfig};
    use real_model::ModelSpec;
    use real_profiler::{ProfileConfig, Profiler};

    fn setup() -> (Estimator, SearchSpace) {
        let cluster = ClusterSpec::h100(1);
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        let graph = ppo(&actor, &critic, &RlhfConfig::instruct_gpt(128));
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 2);
        let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
        let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
        let space = SearchSpace::build(&cluster, &graph, PruneLevel::Aggressive);
        (est, space)
    }

    #[test]
    fn greedy_picks_per_call_minimum() {
        let (est, space) = setup();
        let plan = greedy_plan(&est, &space);
        for call in 0..space.n_calls() {
            let id = CallId(call);
            let chosen = est.call_duration(id, plan.assignment(id));
            for opt in space.options(call) {
                assert!(
                    chosen <= est.call_duration(id, opt) + 1e-12,
                    "call {call}: greedy missed a faster option"
                );
            }
        }
    }

    #[test]
    fn greedy_plan_is_deterministic() {
        let (est, space) = setup();
        assert_eq!(greedy_plan(&est, &space), greedy_plan(&est, &space));
    }

    #[test]
    fn greedy_has_finite_time_cost() {
        let (est, space) = setup();
        let plan = greedy_plan(&est, &space);
        let t = est.time_cost(&plan);
        assert!(t.is_finite() && t > 0.0);
    }
}
