//! Plan comparison and explanation: which calls differ between two plans
//! and how much each difference contributes, by swapping assignments one
//! call at a time on the estimator. Powers `real plan`'s output and the
//! progressive-optimization figures.

use real_dataflow::{CallId, ExecutionPlan};
use real_estimator::Estimator;
use real_util::Table;

/// One call's difference between two plans.
#[derive(Debug, Clone)]
pub struct CallDiff {
    /// The call.
    pub call: CallId,
    /// Call name.
    pub call_name: String,
    /// Assignment rendered from the base plan.
    pub from: String,
    /// Assignment rendered from the target plan.
    pub to: String,
    /// Estimated `TimeCost` after adopting the target's assignment for this
    /// call on top of the base plan (all else unchanged).
    pub time_after_swap: f64,
}

/// A full comparison between a base plan and a target plan.
#[derive(Debug, Clone)]
pub struct PlanComparison {
    /// Estimated `TimeCost` of the base plan.
    pub base_time: f64,
    /// Estimated `TimeCost` of the target plan.
    pub target_time: f64,
    /// Per-call differences (only calls whose assignments differ).
    pub diffs: Vec<CallDiff>,
}

impl PlanComparison {
    /// Ratio `base/target` (> 1 when the target is faster).
    pub fn speedup(&self) -> f64 {
        self.base_time / self.target_time
    }

    /// Renders the comparison as a table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "call",
            "base",
            "target",
            "TimeCost after single swap (s)",
        ]);
        for d in &self.diffs {
            t.row(vec![
                d.call_name.clone(),
                d.from.clone(),
                d.to.clone(),
                format!("{:.2}", d.time_after_swap),
            ]);
        }
        format!(
            "{}base {:.2}s -> target {:.2}s ({:.2}x)\n",
            t.render(),
            self.base_time,
            self.target_time,
            self.speedup()
        )
    }
}

/// Compares `base` against `target` under `est`, measuring each differing
/// call's isolated contribution by swapping it alone into the base plan.
pub fn compare(est: &Estimator, base: &ExecutionPlan, target: &ExecutionPlan) -> PlanComparison {
    let graph = est.graph();
    let base_time = est.time_cost(base);
    let target_time = est.time_cost(target);
    let mut diffs = Vec::new();
    for (id, call) in graph.iter() {
        let a = base.assignment(id);
        let b = target.assignment(id);
        if a == b {
            continue;
        }
        let swapped = base
            .with_assignment(id, *b)
            .expect("assignments from valid plans stay valid");
        diffs.push(CallDiff {
            call: id,
            call_name: call.call_name.clone(),
            from: a.to_string(),
            to: b.to_string(),
            time_after_swap: est.time_cost(&swapped),
        });
    }
    PlanComparison {
        base_time,
        target_time,
        diffs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::heuristic_plan;
    use crate::mcmc::{search, McmcConfig};
    use crate::space::{PruneLevel, SearchSpace};
    use real_cluster::ClusterSpec;
    use real_dataflow::algo::{ppo, RlhfConfig};
    use real_model::ModelSpec;
    use real_profiler::{ProfileConfig, Profiler};
    use std::time::Duration;

    fn setup() -> (Estimator, SearchSpace) {
        let cluster = ClusterSpec::h100(2);
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        let graph = ppo(&actor, &critic, &RlhfConfig::instruct_gpt(256));
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 13);
        let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
        let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
        let space = SearchSpace::build(&cluster, &graph, PruneLevel::Aggressive);
        (est, space)
    }

    #[test]
    fn identical_plans_have_no_diffs() {
        let (est, _) = setup();
        let plan = heuristic_plan(&est);
        let cmp = compare(&est, &plan, &plan);
        assert!(cmp.diffs.is_empty());
        assert_eq!(cmp.base_time, cmp.target_time);
        assert!((cmp.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn searched_vs_heuristic_shows_contributions() {
        let (est, space) = setup();
        let heuristic = heuristic_plan(&est);
        let result = search(
            &est,
            &space,
            &McmcConfig {
                max_steps: 3_000,
                time_limit: Duration::from_secs(30),
                record_trace: false,
                ..McmcConfig::default()
            },
        );
        let cmp = compare(&est, &heuristic, &result.best_plan);
        assert!(!cmp.diffs.is_empty(), "the search should change something");
        assert!(cmp.speedup() > 1.0, "target must be faster");
        let rendered = cmp.render();
        assert!(rendered.contains("->"));
        assert!(rendered.contains('x'));
        // Each single swap produces a valid finite estimate.
        for d in &cmp.diffs {
            assert!(d.time_after_swap.is_finite() && d.time_after_swap > 0.0);
        }
    }
}
