//! Plan comparison and explanation: which calls differ between two plans
//! and how much each difference contributes, by swapping assignments one
//! call at a time on the estimator. Powers `real plan`'s output and the
//! progressive-optimization figures.

use real_dataflow::{CallId, ExecutionPlan};
use real_estimator::Estimator;
use real_util::Table;

/// One call's difference between two plans.
#[derive(Debug, Clone)]
pub struct CallDiff {
    /// The call.
    pub call: CallId,
    /// Call name.
    pub call_name: String,
    /// Assignment rendered from the base plan.
    pub from: String,
    /// Assignment rendered from the target plan.
    pub to: String,
    /// Estimated `TimeCost` after adopting the target's assignment for this
    /// call on top of the base plan (all else unchanged).
    pub time_after_swap: f64,
}

/// One call's speculative-decoding difference between two plans: which
/// draft model drafts, at what speculation length, and where the draft
/// lives — or `off` when a side decodes plainly.
#[derive(Debug, Clone)]
pub struct SpecDiff {
    /// The call.
    pub call: CallId,
    /// Call name.
    pub call_name: String,
    /// The base plan's speculation choice, rendered (`off` when plain).
    pub from: String,
    /// The target plan's speculation choice, rendered (`off` when plain).
    pub to: String,
    /// Estimated `TimeCost` after adopting the target's speculation choice
    /// for this call on top of the base plan (all else unchanged).
    pub time_after_swap: f64,
}

/// A full comparison between a base plan and a target plan.
#[derive(Debug, Clone)]
pub struct PlanComparison {
    /// Estimated `TimeCost` of the base plan.
    pub base_time: f64,
    /// Estimated `TimeCost` of the target plan.
    pub target_time: f64,
    /// Per-call differences (only calls whose assignments differ).
    pub diffs: Vec<CallDiff>,
    /// Per-call speculative-decoding differences (only calls whose
    /// speculation choices differ).
    pub spec_diffs: Vec<SpecDiff>,
}

impl PlanComparison {
    /// Ratio `base/target` (> 1 when the target is faster).
    pub fn speedup(&self) -> f64 {
        self.base_time / self.target_time
    }

    /// Renders the comparison as a table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "call",
            "base",
            "target",
            "TimeCost after single swap (s)",
        ]);
        for d in &self.diffs {
            t.row(vec![
                d.call_name.clone(),
                d.from.clone(),
                d.to.clone(),
                format!("{:.2}", d.time_after_swap),
            ]);
        }
        let mut out = t.render();
        if !self.spec_diffs.is_empty() {
            let mut s = Table::new(vec![
                "call",
                "base speculation",
                "target speculation",
                "TimeCost after single swap (s)",
            ]);
            for d in &self.spec_diffs {
                s.row(vec![
                    d.call_name.clone(),
                    d.from.clone(),
                    d.to.clone(),
                    format!("{:.2}", d.time_after_swap),
                ]);
            }
            out.push_str(&s.render());
        }
        format!(
            "{}base {:.2}s -> target {:.2}s ({:.2}x)\n",
            out,
            self.base_time,
            self.target_time,
            self.speedup()
        )
    }
}

/// Compares `base` against `target` under `est`, measuring each differing
/// call's isolated contribution by swapping it alone into the base plan.
pub fn compare(est: &Estimator, base: &ExecutionPlan, target: &ExecutionPlan) -> PlanComparison {
    let graph = est.graph();
    let base_time = est.time_cost(base);
    let target_time = est.time_cost(target);
    let mut diffs = Vec::new();
    for (id, call) in graph.iter() {
        let a = base.assignment(id);
        let b = target.assignment(id);
        if a == b {
            continue;
        }
        let swapped = base
            .with_assignment(id, *b)
            .expect("assignments from valid plans stay valid");
        diffs.push(CallDiff {
            call: id,
            call_name: call.call_name.clone(),
            from: a.to_string(),
            to: b.to_string(),
            time_after_swap: est.time_cost(&swapped),
        });
    }
    let render_spec = |c: Option<&real_dataflow::SpecChoice>| {
        c.map_or_else(|| "off".to_string(), ToString::to_string)
    };
    let mut spec_diffs = Vec::new();
    for (id, call) in graph.iter() {
        let a = base.spec_choice(id);
        let b = target.spec_choice(id);
        if a == b {
            continue;
        }
        let swapped = base
            .with_spec(id, b.cloned())
            .expect("speculation choices from valid plans stay valid");
        spec_diffs.push(SpecDiff {
            call: id,
            call_name: call.call_name.clone(),
            from: render_spec(a),
            to: render_spec(b),
            time_after_swap: est.time_cost(&swapped),
        });
    }
    PlanComparison {
        base_time,
        target_time,
        diffs,
        spec_diffs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::heuristic_plan;
    use crate::mcmc::{search, McmcConfig};
    use crate::space::{PruneLevel, SearchSpace};
    use real_cluster::ClusterSpec;
    use real_dataflow::algo::{ppo, RlhfConfig};
    use real_model::ModelSpec;
    use real_profiler::{ProfileConfig, Profiler};
    use std::time::Duration;

    fn setup() -> (Estimator, SearchSpace) {
        let cluster = ClusterSpec::h100(2);
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        let graph = ppo(&actor, &critic, &RlhfConfig::instruct_gpt(256));
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 13);
        let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
        let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
        let space = SearchSpace::build(&cluster, &graph, PruneLevel::Aggressive);
        (est, space)
    }

    #[test]
    fn identical_plans_have_no_diffs() {
        let (est, _) = setup();
        let plan = heuristic_plan(&est);
        let cmp = compare(&est, &plan, &plan);
        assert!(cmp.diffs.is_empty());
        assert!(cmp.spec_diffs.is_empty());
        assert_eq!(cmp.base_time, cmp.target_time);
        assert!((cmp.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speculation_differences_are_reported() {
        use real_cluster::DeviceMesh;
        use real_dataflow::SpecChoice;
        use real_model::specdec::AcceptanceCurve;
        use real_model::{ParallelStrategy, SpecDecodeConfig};

        let (est, _) = setup();
        let plain = heuristic_plan(&est);
        let cluster = est.cluster();
        let gen = est.graph().find("actor_gen").unwrap();
        let choice = SpecChoice {
            config: SpecDecodeConfig {
                draft_model: real_model::ModelSpec::llama3_1b(),
                speculation_len: 4,
                acceptance_curve: AcceptanceCurve::Constant(0.8),
            },
            assignment: real_dataflow::CallAssignment::new(
                DeviceMesh::sub_node(cluster, 0, 0, 2).unwrap(),
                ParallelStrategy::new(1, 2, 1, 1).unwrap(),
            )
            .unwrap(),
        };
        let speculative = plain.with_spec(gen, Some(choice)).unwrap();
        let cmp = compare(&est, &plain, &speculative);
        assert!(cmp.diffs.is_empty(), "assignments are unchanged");
        assert_eq!(cmp.spec_diffs.len(), 1);
        let d = &cmp.spec_diffs[0];
        assert_eq!(d.call, gen);
        assert_eq!(d.from, "off");
        assert!(
            d.to.contains("llama3-1b") && d.to.contains("k=4"),
            "{}",
            d.to
        );
        assert!(d.time_after_swap.is_finite() && d.time_after_swap > 0.0);
        let rendered = cmp.render();
        assert!(rendered.contains("speculation"), "{rendered}");
        // The reverse direction renders `off` on the target side.
        let back = compare(&est, &speculative, &plain);
        assert_eq!(back.spec_diffs.len(), 1);
        assert_eq!(back.spec_diffs[0].to, "off");
    }

    #[test]
    fn searched_vs_heuristic_shows_contributions() {
        let (est, space) = setup();
        let heuristic = heuristic_plan(&est);
        let result = search(
            &est,
            &space,
            &McmcConfig {
                max_steps: 3_000,
                time_limit: Duration::from_secs(30),
                record_trace: false,
                ..McmcConfig::default()
            },
        );
        let cmp = compare(&est, &heuristic, &result.best_plan);
        assert!(!cmp.diffs.is_empty(), "the search should change something");
        assert!(cmp.speedup() > 1.0, "target must be faster");
        let rendered = cmp.render();
        assert!(rendered.contains("->"));
        assert!(rendered.contains('x'));
        // Each single swap produces a valid finite estimate.
        for d in &cmp.diffs {
            assert!(d.time_after_swap.is_finite() && d.time_after_swap > 0.0);
        }
    }
}
