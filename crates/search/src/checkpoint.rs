//! Checkpoint/restore of MCMC search state, and projection of an incumbent
//! plan onto a (possibly shrunken) search space.
//!
//! Long searches can be paused and resumed across processes: the chain's
//! incumbent/best plans, penalized costs, RNG position
//! ([`real_util::RngState`]), and step count round-trip through JSON. The
//! re-planning loop also uses [`project_onto`] to warm-start a re-search
//! from the plan that was running when a fault hit, after the fault has
//! removed some meshes from the space.

use crate::space::SearchSpace;
use real_dataflow::{CallAssignment, CallId, ExecutionPlan};
use real_estimator::Estimator;
use real_util::RngState;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// The resumable state of one MCMC chain, captured at the end of the chain
/// loop (the coordinate-descent polish refines only the returned best plan,
/// never the chain position, so resuming replays exactly the draws the
/// original chain would have made next).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainState {
    /// The `McmcConfig::seed` the chain was started with.
    pub seed: u64,
    /// The step budget the chain was annealing against when captured.
    pub max_steps: u64,
    /// The chain's current plan (the Metropolis walker).
    pub incumbent: ExecutionPlan,
    /// Penalized §5.2 cost of the incumbent.
    pub incumbent_cost: f64,
    /// Best plan seen so far (by penalized cost).
    pub best: ExecutionPlan,
    /// Penalized cost of the best plan.
    pub best_cost: f64,
    /// RNG stream position.
    pub rng: RngState,
    /// Steps taken.
    pub steps: u64,
    /// Accepted transitions.
    pub accepted: u64,
}

/// A saved search: resumable [`ChainState`] plus the improvement trace, as
/// written by `real plan --checkpoint` and consumed by `real replan --from`.
///
/// # Examples
///
/// Searching, checkpointing to disk, and resuming with a larger budget:
///
/// ```
/// use real_cluster::ClusterSpec;
/// use real_dataflow::algo::{ppo, RlhfConfig};
/// use real_estimator::Estimator;
/// use real_model::ModelSpec;
/// use real_profiler::{ProfileConfig, Profiler};
/// use real_search::{resume, search, McmcConfig, PruneLevel, SearchCheckpoint, SearchSpace};
/// use std::time::Duration;
///
/// let cluster = ClusterSpec::h100(1);
/// let actor = ModelSpec::llama3_7b();
/// let graph = ppo(&actor, &actor.critic(), &RlhfConfig::instruct_gpt(64));
/// let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 1);
/// let profiles = vec![profiler.profile(&actor), profiler.profile(&actor.critic())];
/// let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
/// let space = SearchSpace::build(&cluster, &graph, PruneLevel::Aggressive);
///
/// let cfg = McmcConfig {
///     max_steps: 50,
///     time_limit: Duration::from_secs(5),
///     ..Default::default()
/// };
/// let result = search(&est, &space, &cfg);
///
/// let path = std::env::temp_dir().join("real-doc-checkpoint.json");
/// result.checkpoint().save(&path).unwrap();
/// let restored = SearchCheckpoint::load(&path).unwrap();
/// assert_eq!(restored.chain, result.chain);
///
/// // Resume the same chain against a doubled step budget.
/// let more = McmcConfig { max_steps: 100, ..cfg };
/// let resumed = resume(&est, &space, &more, &restored);
/// assert!(resumed.steps >= restored.chain.steps);
/// # std::fs::remove_file(&path).ok();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchCheckpoint {
    /// The resumable chain state.
    pub chain: ChainState,
    /// `(elapsed_secs, best_time_cost)` improvement trace accumulated so
    /// far; resumed searches append to it (elapsed times restart from the
    /// resume instant).
    pub trace: Vec<(f64, f64)>,
}

impl SearchCheckpoint {
    /// Serializes the checkpoint to pretty-printed JSON at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be written.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a checkpoint previously written by [`Self::save`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, or `InvalidData` when the file is
    /// not a valid checkpoint.
    pub fn load(path: &Path) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Projects `plan` onto `space`: every assignment already present in its
/// call's option list is kept; any other (e.g. one whose mesh died) is
/// replaced by the *nearest* surviving option — smallest total log2 shape
/// change across dp/tp/pp/micro-batches plus a mesh-locality term (same
/// mesh 0, overlapping 1, disjoint 2). This is the warm start a re-plan
/// seeds its chain with.
///
/// # Panics
///
/// Panics if `space` was built for a different graph than `plan`.
pub fn project_onto(plan: &ExecutionPlan, est: &Estimator, space: &SearchSpace) -> ExecutionPlan {
    let assignments: Vec<CallAssignment> = (0..space.n_calls())
        .map(|call| {
            let from = plan.assignment(CallId(call));
            let opts = space.options(call);
            if opts.contains(from) {
                return *from;
            }
            let mut nearest = opts[0];
            let mut best_d = assignment_distance(from, &nearest);
            for opt in &opts[1..] {
                let d = assignment_distance(from, opt);
                if d < best_d {
                    nearest = *opt;
                    best_d = d;
                }
            }
            nearest
        })
        .collect();
    ExecutionPlan::new(est.graph(), est.cluster(), assignments)
        .expect("projected assignments come from a validated search space")
}

/// Distance between two assignments for projection: log2 shape deltas plus
/// a coarse mesh-locality penalty.
fn assignment_distance(from: &CallAssignment, to: &CallAssignment) -> f64 {
    let shape = |a: u32, b: u32| (f64::from(a).log2() - f64::from(b).log2()).abs();
    let mesh = if to.mesh == from.mesh {
        0.0
    } else if to.mesh.overlaps(&from.mesh) {
        1.0
    } else {
        2.0
    };
    shape(from.strategy.dp(), to.strategy.dp())
        + shape(from.strategy.tp(), to.strategy.tp())
        + shape(from.strategy.pp(), to.strategy.pp())
        + shape(from.strategy.micro_batches(), to.strategy.micro_batches())
        + mesh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::heuristic_plan;
    use crate::mcmc::{resume, search, search_warm, McmcConfig};
    use crate::space::PruneLevel;
    use real_cluster::{ClusterHealth, ClusterSpec, GpuId};
    use real_dataflow::algo::{ppo, RlhfConfig};
    use real_model::ModelSpec;
    use real_profiler::{ProfileConfig, Profiler};
    use std::time::Duration;

    fn setup(nodes: u32, batch: u64) -> (ClusterSpec, Estimator, SearchSpace) {
        let cluster = ClusterSpec::h100(nodes);
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        let graph = ppo(&actor, &critic, &RlhfConfig::instruct_gpt(batch));
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 21);
        let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
        let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
        let space = SearchSpace::build(&cluster, est.graph(), PruneLevel::Aggressive);
        (cluster, est, space)
    }

    fn steps_cfg(seed: u64, max_steps: u64) -> McmcConfig {
        McmcConfig {
            beta: 1.0,
            max_steps,
            time_limit: Duration::from_secs(3600), // bound by steps only
            seed,
            record_trace: true,
            memo: true,
        }
    }

    #[test]
    fn checkpoint_round_trips_through_disk() {
        let (_, est, space) = setup(1, 128);
        let result = search(&est, &space, &steps_cfg(3, 300));
        let ckpt = result.checkpoint();
        assert_eq!(ckpt.chain.steps, 300);
        assert_eq!(ckpt.chain.seed, 3);

        let path = std::env::temp_dir().join("real-search-ckpt-test.json");
        ckpt.save(&path).unwrap();
        let loaded = SearchCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, ckpt);
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("real-search-ckpt-garbage.json");
        std::fs::write(&path, "not json").unwrap();
        let err = SearchCheckpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn resume_is_deterministic() {
        let (_, est, space) = setup(1, 128);
        let ckpt = search(&est, &space, &steps_cfg(7, 200)).checkpoint();
        let more = steps_cfg(7, 500);
        let a = resume(&est, &space, &more, &ckpt);
        let b = resume(&est, &space, &more, &ckpt);
        assert_eq!(a.best_plan, b.best_plan);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.chain, b.chain);
        assert_eq!(a.steps, 500, "resumed chain runs to the new budget");
    }

    #[test]
    fn resume_is_bit_identical_with_the_memo_cache_on_and_off() {
        let (_, est, space) = setup(1, 128);
        let ckpt = search(&est, &space, &steps_cfg(17, 200)).checkpoint();
        let mut on = steps_cfg(17, 500);
        let mut off = on.clone();
        on.memo = true;
        off.memo = false;
        let a = resume(&est, &space, &on, &ckpt);
        let b = resume(&est, &space, &off, &ckpt);
        assert_eq!(a.best_plan, b.best_plan);
        assert_eq!(a.best_time_cost.to_bits(), b.best_time_cost.to_bits());
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.chain, b.chain);
        assert!(
            a.memo.hits + a.memo.misses > 0,
            "memoized run priced via the cache"
        );
    }

    #[test]
    fn resume_never_regresses_the_checkpoint_best() {
        let (_, est, space) = setup(1, 128);
        let ckpt = search(&est, &space, &steps_cfg(11, 200)).checkpoint();
        let resumed = resume(&est, &space, &steps_cfg(11, 600), &ckpt);
        assert!(est.cost(&resumed.best_plan) <= ckpt.chain.best_cost + 1e-9);
        // The carried-over trace is a prefix of the resumed trace.
        assert!(resumed.trace.len() >= ckpt.trace.len());
        assert_eq!(&resumed.trace[..ckpt.trace.len()], &ckpt.trace[..]);
    }

    #[test]
    fn projection_is_identity_within_the_space() {
        let (_, est, space) = setup(1, 128);
        let plan = search(&est, &space, &steps_cfg(13, 300)).best_plan;
        assert_eq!(project_onto(&plan, &est, &space), plan);
    }

    #[test]
    fn projection_moves_dead_mesh_assignments_into_the_space() {
        let (cluster, est, _) = setup(2, 512);
        // Incumbent on the full (2-node) cluster.
        let incumbent = heuristic_plan(&est);
        // GPU 0 dies: the full-cluster mesh and all node-0 meshes vanish.
        let mut health = ClusterHealth::healthy(&cluster);
        health.mark_dead(GpuId(0));
        let shrunken = SearchSpace::try_build_on(
            &cluster,
            est.graph(),
            PruneLevel::Aggressive,
            &health.surviving_meshes(),
        )
        .unwrap();
        let projected = project_onto(&incumbent, &est, &shrunken);
        for call in 0..shrunken.n_calls() {
            let a = projected.assignment(CallId(call));
            assert!(shrunken.options(call).contains(a));
            assert!(!a.mesh.contains(GpuId(0)));
        }
    }

    #[test]
    fn warm_start_is_deterministic_and_stays_in_space() {
        let (cluster, est, _) = setup(2, 512);
        let incumbent = heuristic_plan(&est);
        let mut health = ClusterHealth::healthy(&cluster);
        health.mark_dead(GpuId(3));
        let shrunken = SearchSpace::try_build_on(
            &cluster,
            est.graph(),
            PruneLevel::Aggressive,
            &health.surviving_meshes(),
        )
        .unwrap();
        let degraded = est.clone().with_health(health);
        let cfg = steps_cfg(17, 400);
        let a = search_warm(&degraded, &shrunken, &cfg, &incumbent);
        let b = search_warm(&degraded, &shrunken, &cfg, &incumbent);
        assert_eq!(a.best_plan, b.best_plan);
        assert_eq!(a.accepted, b.accepted);
        for call in 0..shrunken.n_calls() {
            assert!(!a.best_plan.assignment(CallId(call)).mesh.contains(GpuId(3)));
        }
    }
}
