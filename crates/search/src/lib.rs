//! The execution plan generator (§5 of the paper).
//!
//! - [`space`] — enumerates each call's `(device mesh, strategy,
//!   micro-batches)` options with the §8.2 pruning heuristics, at three
//!   pruning levels (the Fig. 14 ablation),
//! - [`greedy`] — the §5.2 greedy initial plan `p0` minimizing the sum of
//!   isolated call costs,
//! - [`heuristic`] — the REAL-Heuristic baseline: a pre-training-inspired
//!   symmetric 3D plan (intra-node TP, inter-node PP, DP maximized within
//!   memory),
//! - [`mcmc`] — Metropolis–Hastings sampling over the energy distribution
//!   `P(p) ∝ exp(-β · cost(G_p))`, plus a multi-chain parallel driver (the
//!   paper's noted multi-core extension),
//! - [`brute`] — branch-and-bound exhaustive search over the same pruned
//!   space, used as the optimality reference of Fig. 15,
//! - [`checkpoint`] — serde checkpoint/restore of the MCMC chain state
//!   (incumbent, best, RNG position, step count) plus projection of an
//!   incumbent plan onto a shrunken space, powering warm-started mid-run
//!   re-planning (`search_warm` / `resume`),
//! - [`specsearch`] — speculative decoding as a searchable plan dimension: a
//!   speculation menu (drafts × speculation lengths × draft placements), an
//!   MH chain mixing assignment moves with spec toggle/resize/move moves,
//!   and a greedy polish that strips non-improving speculation.

pub mod brute;
pub mod checkpoint;
pub mod explain;
pub mod greedy;
pub mod heuristic;
pub mod mcmc;
pub mod space;
pub mod specsearch;

pub use brute::{brute_force, BruteConfig};
pub use checkpoint::{project_onto, ChainState, SearchCheckpoint};
pub use explain::{compare, CallDiff, PlanComparison, SpecDiff};
pub use greedy::greedy_plan;
pub use heuristic::heuristic_plan;
pub use mcmc::{
    chain_seed, merge_results, parallel_search, parallel_search_on, resume, search, search_warm,
    search_warm_with_memo, search_with_memo, McmcConfig, SearchResult,
};
pub use space::{ImpossibleCall, PruneLevel, SearchSpace};
pub use specsearch::{
    search_speculative, search_speculative_with_memo, SpecMenu, SpecSearchResult,
};
