//! Per-call option enumeration with the §8.2 pruning heuristics.

use real_cluster::{ClusterSpec, DeviceMesh};
use real_dataflow::{CallAssignment, CallType, DataflowGraph};
use real_model::{MemoryModel, ParallelStrategy};
use serde::{Deserialize, Serialize};

/// How aggressively to prune the option space (the Fig. 14 ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PruneLevel {
    /// Only hard validity: strategy fills the mesh, TP within the model's
    /// KV-head bound, DP within the batch.
    Light,
    /// Adds the paper's heuristics: TP bounded by the node width, static
    /// weights must fit the devices.
    Moderate,
    /// Adds an active-memory prefilter and restricts micro-batch counts to
    /// a minimal feasible window.
    Aggressive,
}

impl PruneLevel {
    fn mbs_options(&self) -> &'static [u32] {
        match self {
            PruneLevel::Light => &[1, 2, 4, 8, 16, 32, 64],
            PruneLevel::Moderate => &[1, 2, 4, 8, 16, 32],
            PruneLevel::Aggressive => &[1, 2, 4, 8, 16],
        }
    }
}

/// A call for which pruning removed every option: the model cannot run on
/// the cluster under any enumerated mesh/strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImpossibleCall {
    /// Name of the unfittable call.
    pub call_name: String,
}

impl std::fmt::Display for ImpossibleCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no valid option for call {}: model too large for the cluster",
            self.call_name
        )
    }
}

impl std::error::Error for ImpossibleCall {}

/// The pruned option lists, one per call of the workflow.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    options: Vec<Vec<CallAssignment>>,
}

impl SearchSpace {
    /// Enumerates options for every call of `graph` on `cluster` at the
    /// given pruning level.
    ///
    /// # Panics
    ///
    /// Panics if pruning removes *every* option for some call — that means
    /// the model cannot run on the cluster at all. Use [`Self::try_build`]
    /// to handle that case as a value.
    pub fn build(cluster: &ClusterSpec, graph: &DataflowGraph, level: PruneLevel) -> Self {
        Self::try_build(cluster, graph, level).unwrap_or_else(|e| {
            panic!(
                "pruning removed every option for call {} — model too large for cluster",
                e.call_name
            )
        })
    }

    /// Fallible variant of [`Self::build`].
    ///
    /// # Errors
    ///
    /// Returns [`ImpossibleCall`] naming the first call with no valid
    /// option.
    pub fn try_build(
        cluster: &ClusterSpec,
        graph: &DataflowGraph,
        level: PruneLevel,
    ) -> Result<Self, ImpossibleCall> {
        Self::try_build_on(cluster, graph, level, &DeviceMesh::enumerate(cluster))
    }

    /// [`Self::try_build`] restricted to an explicit mesh set — the re-plan
    /// path passes `ClusterHealth::surviving_meshes` here so the search
    /// never places a call on dead hardware.
    ///
    /// # Errors
    ///
    /// Returns [`ImpossibleCall`] naming the first call with no valid
    /// option over `meshes`.
    pub fn try_build_on(
        cluster: &ClusterSpec,
        graph: &DataflowGraph,
        level: PruneLevel,
        meshes: &[DeviceMesh],
    ) -> Result<Self, ImpossibleCall> {
        let capacity = cluster.gpu.mem_capacity;
        let mut options: Vec<Vec<CallAssignment>> = Vec::with_capacity(graph.n_calls());

        for (_, call) in graph.iter() {
            let model = &call.model;
            let mm = MemoryModel::new(model.clone());
            let trainable = call.call_type.is_training();
            let batch = call.call_type.batch();
            let mut opts = Vec::new();

            for &mesh in meshes {
                let n = mesh.n_gpus();
                let max_tp = match level {
                    PruneLevel::Light => model.max_tp().min(u64::from(n)) as u32,
                    // §8.2: discard TP degrees exceeding the node width.
                    _ => model
                        .max_tp()
                        .min(u64::from(cluster.gpus_per_node))
                        .min(u64::from(mesh.gpu_width())) as u32,
                };
                let max_pp = model.n_layers.min(u64::from(n)) as u32;
                for s in ParallelStrategy::enumerate(n, max_tp, max_pp, level.mbs_options()) {
                    if u64::from(s.dp()) > batch {
                        continue;
                    }
                    if level != PruneLevel::Light {
                        // Static prefilter: weights (+ optimizer state when
                        // trainable) must fit.
                        let static_bytes = if trainable {
                            mm.static_optim_bytes(&s) + mm.weight_bytes_per_gpu(&s)
                        } else {
                            mm.weight_bytes_per_gpu(&s)
                        };
                        if static_bytes > capacity {
                            continue;
                        }
                    }
                    if level == PruneLevel::Aggressive {
                        // Active-memory prefilter for this call alone.
                        let dp = u64::from(s.dp());
                        let active = match call.call_type {
                            CallType::Generate {
                                batch,
                                prompt_len,
                                gen_len,
                            } => mm.gen_active_bytes(&s, batch.div_ceil(dp), prompt_len + gen_len),
                            CallType::Inference { batch, seq_len } => {
                                mm.infer_active_bytes(&s, batch.div_ceil(dp) * seq_len)
                            }
                            CallType::TrainStep {
                                batch,
                                seq_len,
                                n_minibatches,
                            } => {
                                let per =
                                    batch.div_ceil(dp).div_ceil(u64::from(n_minibatches.max(1)));
                                mm.train_active_bytes(&s, per * seq_len)
                            }
                        };
                        if active > capacity {
                            continue;
                        }
                    }
                    opts.push(
                        CallAssignment::new(mesh, s)
                            .expect("enumerated strategies fill their mesh"),
                    );
                }
            }
            if opts.is_empty() {
                return Err(ImpossibleCall {
                    call_name: call.call_name.clone(),
                });
            }
            options.push(opts);
        }
        Ok(Self { options })
    }

    /// Option list for one call.
    ///
    /// # Panics
    ///
    /// Panics if `call` is out of range.
    pub fn options(&self, call: usize) -> &[CallAssignment] {
        &self.options[call]
    }

    /// Number of calls.
    pub fn n_calls(&self) -> usize {
        self.options.len()
    }

    /// log10 of the total number of execution plans in the space.
    pub fn log10_size(&self) -> f64 {
        self.options.iter().map(|o| (o.len() as f64).log10()).sum()
    }

    /// Total options across calls.
    pub fn total_options(&self) -> usize {
        self.options.iter().map(Vec::len).sum()
    }

    /// Keeps only the `k` best options per call as ranked by `score`
    /// (ascending). Used by brute force to bound the enumeration.
    pub fn truncated_by<F>(&self, k: usize, mut score: F) -> Self
    where
        F: FnMut(usize, &CallAssignment) -> f64,
    {
        assert!(k > 0, "must keep at least one option per call");
        let options = self
            .options
            .iter()
            .enumerate()
            .map(|(call, opts)| {
                let mut scored: Vec<(f64, CallAssignment)> =
                    opts.iter().map(|a| (score(call, a), *a)).collect();
                scored.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("scores are finite"));
                scored.into_iter().take(k).map(|(_, a)| a).collect()
            })
            .collect();
        Self { options }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_dataflow::algo::{ppo, RlhfConfig};
    use real_model::ModelSpec;

    fn graph_7b(batch: u64) -> DataflowGraph {
        let a = ModelSpec::llama3_7b();
        ppo(&a, &a.critic(), &RlhfConfig::instruct_gpt(batch))
    }

    #[test]
    fn one_node_space_has_hundreds_of_options_per_call() {
        // The paper: "in a cluster of shape (8,8), there are over 500
        // options for each model function call". One node is smaller but
        // should still offer dozens-to-hundreds.
        let cluster = ClusterSpec::h100(1);
        let space = SearchSpace::build(&cluster, &graph_7b(512), PruneLevel::Moderate);
        for call in 0..space.n_calls() {
            let n = space.options(call).len();
            assert!(n > 50, "call {call} has only {n} options");
        }
    }

    #[test]
    fn pruning_levels_shrink_the_space() {
        let cluster = ClusterSpec::h100(2);
        let g = graph_7b(512);
        let light = SearchSpace::build(&cluster, &g, PruneLevel::Light);
        let moderate = SearchSpace::build(&cluster, &g, PruneLevel::Moderate);
        let aggressive = SearchSpace::build(&cluster, &g, PruneLevel::Aggressive);
        assert!(light.log10_size() > moderate.log10_size());
        assert!(moderate.log10_size() > aggressive.log10_size());
    }

    #[test]
    fn moderate_level_respects_node_tp_bound() {
        let cluster = ClusterSpec::h100(2);
        let space = SearchSpace::build(&cluster, &graph_7b(512), PruneLevel::Moderate);
        for call in 0..space.n_calls() {
            for a in space.options(call) {
                assert!(a.strategy.tp() <= cluster.gpus_per_node);
                assert!(a.strategy.tp() <= a.mesh.gpu_width());
            }
        }
    }

    #[test]
    fn all_options_fill_their_mesh() {
        let cluster = ClusterSpec::h100(1);
        let space = SearchSpace::build(&cluster, &graph_7b(64), PruneLevel::Light);
        for call in 0..space.n_calls() {
            for a in space.options(call) {
                assert_eq!(a.strategy.world_size(), a.mesh.n_gpus());
            }
        }
    }

    #[test]
    fn static_prefilter_drops_single_gpu_70b() {
        let cluster = ClusterSpec::h100(4);
        let a = ModelSpec::llama3_70b();
        let g = ppo(
            &a,
            &ModelSpec::llama3_7b().critic(),
            &RlhfConfig::instruct_gpt(512),
        );
        let space = SearchSpace::build(&cluster, &g, PruneLevel::Moderate);
        // 70B training cannot sit on few-GPU meshes: optimizer state alone
        // is ~1.1 TB.
        let train_opts = space.options(4); // actor_train is call index 4
        for a in train_opts {
            assert!(
                a.strategy.tp() * a.strategy.pp() >= 16,
                "70B training needs >= 16-way model sharding, got {}",
                a.strategy
            );
        }
    }

    #[test]
    fn paper_scale_space_sizes() {
        // 8 nodes (64 GPUs): the paper quotes > 10^16 total plans for the
        // unpruned 6-call space.
        let cluster = ClusterSpec::h100(8);
        let light = SearchSpace::build(&cluster, &graph_7b(512), PruneLevel::Light);
        assert!(light.log10_size() > 16.0, "log10 {}", light.log10_size());
    }

    #[test]
    fn truncation_keeps_best_k() {
        let cluster = ClusterSpec::h100(1);
        let space = SearchSpace::build(&cluster, &graph_7b(64), PruneLevel::Aggressive);
        let small = space.truncated_by(3, |_, a| f64::from(a.strategy.tp()));
        for call in 0..small.n_calls() {
            assert_eq!(small.options(call).len(), 3);
            // Scored by TP: kept options have the smallest TP degrees.
            assert!(small.options(call).iter().all(|a| a.strategy.tp() <= 2));
        }
    }

    #[test]
    fn restricted_mesh_set_confines_every_option() {
        use real_cluster::{ClusterHealth, GpuId};
        let cluster = ClusterSpec::h100(2);
        let g = graph_7b(512);
        let mut health = ClusterHealth::healthy(&cluster);
        health.mark_dead(GpuId(0)); // kills node 0's slices and all spans over it
        let surviving = health.surviving_meshes();
        let space =
            SearchSpace::try_build_on(&cluster, &g, PruneLevel::Moderate, &surviving).unwrap();
        for call in 0..space.n_calls() {
            assert!(!space.options(call).is_empty());
            for a in space.options(call) {
                assert!(!a.mesh.contains(GpuId(0)), "option on dead gpu: {}", a.mesh);
            }
        }
        // The full enumeration and the restricted build agree when the
        // restricted set is the full set.
        let full = SearchSpace::try_build(&cluster, &g, PruneLevel::Moderate).unwrap();
        let again = SearchSpace::try_build_on(
            &cluster,
            &g,
            PruneLevel::Moderate,
            &DeviceMesh::enumerate(&cluster),
        )
        .unwrap();
        assert_eq!(full.total_options(), again.total_options());
    }

    #[test]
    fn empty_mesh_set_is_impossible() {
        let cluster = ClusterSpec::h100(1);
        let err =
            SearchSpace::try_build_on(&cluster, &graph_7b(64), PruneLevel::Light, &[]).unwrap_err();
        assert!(!err.call_name.is_empty());
    }

    #[test]
    #[should_panic(expected = "too large for cluster")]
    fn impossible_model_panics() {
        // 70B on a single node: optimizer state cannot fit anywhere.
        let cluster = ClusterSpec::h100(1);
        let a = ModelSpec::llama3_70b();
        let g = ppo(&a, &a.critic(), &RlhfConfig::instruct_gpt(512));
        SearchSpace::build(&cluster, &g, PruneLevel::Moderate);
    }
}
