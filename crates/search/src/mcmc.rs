//! Metropolis–Hastings search over execution plans (§5.2).
//!
//! Plans are sampled from the energy distribution
//! `P(p) ∝ exp(-β · cost(G_p))` by mutating one random call's assignment
//! per step and accepting with probability `min(1, P(p')/P(p))`. The best
//! *memory-feasible* plan by `TimeCost` seen anywhere along the chain is
//! the search output.
//!
//! One practical refinement over the paper's formula: the energy is the
//! *relative* cost change `β · (c' − c) / c`, which makes the temperature
//! scale-free — the same β works for a 5-second 7B iteration and a
//! 500-second 70B one, and for OOM-penalized costs (×α) the chain still
//! random-walks among infeasible plans instead of freezing.
//!
//! [`parallel_search`] runs independent chains on multiple cores and keeps
//! the global best — the multi-core extension the paper mentions as future
//! work.

use crate::checkpoint::{project_onto, ChainState, SearchCheckpoint};
use crate::greedy::greedy_plan;
use crate::space::SearchSpace;
use real_dataflow::{CallId, ExecutionPlan};
use real_estimator::Estimator;
use real_obs::MetricsRegistry;
use real_util::DeterministicRng;
use std::time::{Duration, Instant};

/// Points kept per chain in the energy / best-so-far telemetry series
/// (later points are dropped and counted once a series fills up).
pub const TELEMETRY_SERIES_CAPACITY: usize = 4096;

/// MCMC configuration.
#[derive(Debug, Clone)]
pub struct McmcConfig {
    /// Sampling temperature β over the relative cost change (higher =
    /// greedier). Values around 4–8 accept mild regressions while rejecting
    /// leaps back into OOM territory.
    pub beta: f64,
    /// Hard step budget.
    pub max_steps: u64,
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// RNG seed.
    pub seed: u64,
    /// Record `(elapsed_secs, best_time_cost)` whenever the best improves
    /// (Fig. 13's improvement-ratio curves).
    pub record_trace: bool,
}

impl Default for McmcConfig {
    fn default() -> Self {
        Self {
            beta: 6.0,
            max_steps: 200_000,
            time_limit: Duration::from_secs(60),
            seed: 1,
            record_trace: true,
        }
    }
}

/// Search output: the best plan plus chain statistics.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best memory-feasible plan found (falls back to the overall best-cost
    /// plan if nothing feasible was visited).
    pub best_plan: ExecutionPlan,
    /// `TimeCost` of the best plan.
    pub best_time_cost: f64,
    /// Whether the best plan fits device memory.
    pub feasible: bool,
    /// Steps taken.
    pub steps: u64,
    /// Accepted transitions.
    pub accepted: u64,
    /// `(elapsed_secs, best_time_cost)` improvement trace.
    pub trace: Vec<(f64, f64)>,
    /// Per-step chain telemetry, keyed by a `chain=<seed>` label: the
    /// `search/energy` and `search/best_time_cost` series over steps, and
    /// the `search/steps` / `search/accepted` / `search/oom_penalty_hits`
    /// counters plus the `search/acceptance_rate` gauge.
    pub telemetry: MetricsRegistry,
    /// Resumable chain state, captured at the end of the chain loop (the
    /// polish refines only `best_plan`). Serialize via
    /// [`SearchResult::checkpoint`] to continue this search later.
    pub chain: ChainState,
}

impl SearchResult {
    /// Acceptance rate of the chain.
    pub fn acceptance_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.accepted as f64 / self.steps as f64
        }
    }

    /// Improvement ratio vs. the initial plan (Fig. 13's metric): initial
    /// best cost divided by final best cost.
    pub fn improvement_ratio(&self) -> f64 {
        match self.trace.first() {
            Some(&(_, first)) if self.best_time_cost > 0.0 => first / self.best_time_cost,
            _ => 1.0,
        }
    }

    /// Packages the resumable chain state and improvement trace for
    /// [`SearchCheckpoint::save`].
    pub fn checkpoint(&self) -> SearchCheckpoint {
        SearchCheckpoint {
            chain: self.chain.clone(),
            trace: self.trace.clone(),
        }
    }
}

/// Where a chain starts from.
enum ChainStart<'a> {
    /// The greedy initial plan (the paper's §5.2 setup).
    Greedy,
    /// A caller-supplied plan, e.g. an incumbent projected onto a shrunken
    /// space — the warm start a re-plan uses.
    Warm(&'a ExecutionPlan),
    /// A saved chain: restored RNG position, step count, incumbent and
    /// best. Costs are re-evaluated under the *current* estimator, so a
    /// resume under a degraded-health estimator re-ranks correctly.
    Resume(&'a SearchCheckpoint),
}

/// Runs one Metropolis–Hastings chain from the greedy initial plan.
pub fn search(est: &Estimator, space: &SearchSpace, cfg: &McmcConfig) -> SearchResult {
    run_chain(est, space, cfg, ChainStart::Greedy)
}

/// Runs one chain warm-started from `incumbent`, first projected onto
/// `space` via [`project_onto`] (assignments on vanished meshes are mapped
/// to their nearest surviving option). Used by the re-plan loop, where the
/// incumbent is the plan that was executing when a fault hit.
pub fn search_warm(
    est: &Estimator,
    space: &SearchSpace,
    cfg: &McmcConfig,
    incumbent: &ExecutionPlan,
) -> SearchResult {
    let start = project_onto(incumbent, est, space);
    run_chain(est, space, cfg, ChainStart::Warm(&start))
}

/// Resumes a checkpointed chain: the RNG position, step count, incumbent,
/// and best are restored, then the chain continues while `steps <
/// cfg.max_steps`. The annealing schedule follows the *new* budget, so a
/// resumed chain is not bit-equal to an uninterrupted longer run unless the
/// budgets match; it is, however, fully deterministic given `(checkpoint,
/// cfg)`.
pub fn resume(
    est: &Estimator,
    space: &SearchSpace,
    cfg: &McmcConfig,
    checkpoint: &SearchCheckpoint,
) -> SearchResult {
    run_chain(est, space, cfg, ChainStart::Resume(checkpoint))
}

fn run_chain(
    est: &Estimator,
    space: &SearchSpace,
    cfg: &McmcConfig,
    start_from: ChainStart,
) -> SearchResult {
    let start = Instant::now();
    let n_calls = space.n_calls();

    let (mut rng, mut current, mut steps, mut accepted, prior_best, mut trace) = match start_from {
        ChainStart::Greedy => (
            DeterministicRng::from_seed(cfg.seed).derive("mcmc"),
            greedy_plan(est, space),
            0,
            0,
            None,
            Vec::new(),
        ),
        ChainStart::Warm(plan) => (
            DeterministicRng::from_seed(cfg.seed).derive("mcmc"),
            plan.clone(),
            0,
            0,
            None,
            Vec::new(),
        ),
        ChainStart::Resume(ckpt) => (
            DeterministicRng::from_state(ckpt.chain.rng),
            ckpt.chain.incumbent.clone(),
            ckpt.chain.steps,
            ckpt.chain.accepted,
            Some(ckpt.chain.best.clone()),
            ckpt.trace.clone(),
        ),
    };
    let mut current_cost = est.cost(&current);

    let chain = cfg.seed.to_string();
    let labels: [(&str, &str); 1] = [("chain", chain.as_str())];
    let mut telemetry = MetricsRegistry::new();

    // The penalized §5.2 cost already orders infeasible plans after
    // feasible ones (×α), so tracking the best by penalized cost needs just
    // one estimator call per step.
    let (mut best_plan, mut best_cost) = match prior_best {
        Some(best) => {
            let cost = est.cost(&best);
            (best, cost)
        }
        None => (current.clone(), current_cost),
    };
    if cfg.record_trace && trace.is_empty() {
        trace.push((0.0, est.time_cost(&best_plan)));
    }

    while steps < cfg.max_steps && start.elapsed() < cfg.time_limit {
        steps += 1;
        // Propose: re-draw one call's assignment uniformly from its options.
        let call = CallId(rng.index(n_calls));
        let opts = space.options(call.0);
        let proposal_assignment = opts[rng.index(opts.len())];
        let proposal = current
            .with_assignment(call, proposal_assignment)
            .expect("options are internally consistent");
        let (proposal_cost, oom_penalized) = est.cost_checked(&proposal);
        if oom_penalized {
            telemetry.counter_inc("search/oom_penalty_hits", &labels);
        }

        // Metropolis acceptance over the scale-free relative energy, with a
        // linear annealing schedule: the chain explores early and freezes
        // toward the step budget.
        let progress = steps as f64 / cfg.max_steps as f64;
        let beta = cfg.beta * (1.0 + 3.0 * progress);
        let delta = (proposal_cost - current_cost) / current_cost.max(f64::MIN_POSITIVE);
        let accept_p = (-beta * delta).exp().min(1.0);
        if rng.uniform() < accept_p {
            current = proposal;
            current_cost = proposal_cost;
            accepted += 1;

            if current_cost < best_cost {
                best_plan = current.clone();
                best_cost = current_cost;
                let best_time = est.time_cost(&best_plan);
                if cfg.record_trace {
                    trace.push((start.elapsed().as_secs_f64(), best_time));
                }
                telemetry.series_push(
                    "search/best_time_cost",
                    &labels,
                    TELEMETRY_SERIES_CAPACITY,
                    steps as f64,
                    best_time,
                );
            }
        }
        telemetry.series_push(
            "search/energy",
            &labels,
            TELEMETRY_SERIES_CAPACITY,
            steps as f64,
            current_cost,
        );
    }

    // Capture the resumable chain state *before* the polish: the polish
    // only refines the returned best plan, so a resume re-enters the chain
    // exactly where the sampler stopped.
    let chain_state = ChainState {
        seed: cfg.seed,
        max_steps: cfg.max_steps,
        incumbent: current.clone(),
        incumbent_cost: current_cost,
        best: best_plan.clone(),
        best_cost,
        rng: rng.state(),
        steps,
        accepted,
    };

    // Coordinate-descent polish: sweep the calls, replacing each assignment
    // with its best alternative while the others stay fixed. Converges to a
    // local optimum of the same cost the chain sampled; bounded by the
    // remaining wall-clock budget.
    let mut improved = true;
    while improved && start.elapsed() < cfg.time_limit {
        improved = false;
        for call in 0..n_calls {
            if start.elapsed() >= cfg.time_limit {
                break;
            }
            for &opt in space.options(call) {
                if opt == *best_plan.assignment(CallId(call)) {
                    continue;
                }
                let candidate = best_plan
                    .with_assignment(CallId(call), opt)
                    .expect("options are internally consistent");
                let cost = est.cost(&candidate);
                if cost < best_cost {
                    best_plan = candidate;
                    best_cost = cost;
                    improved = true;
                    if cfg.record_trace {
                        trace.push((start.elapsed().as_secs_f64(), est.time_cost(&best_plan)));
                    }
                }
            }
        }
    }

    telemetry.counter_add("search/steps", &labels, steps as f64);
    telemetry.counter_add("search/accepted", &labels, accepted as f64);
    telemetry.gauge_set(
        "search/acceptance_rate",
        &labels,
        if steps == 0 {
            0.0
        } else {
            accepted as f64 / steps as f64
        },
    );
    let best_time_cost = est.time_cost(&best_plan);
    telemetry.gauge_set("search/best_time_cost_final", &labels, best_time_cost);
    SearchResult {
        best_time_cost,
        feasible: est.mem_ok(&best_plan),
        best_plan,
        steps,
        accepted,
        trace,
        telemetry,
        chain: chain_state,
    }
}

/// Runs `n_chains` independent chains on separate threads (derived seeds)
/// and returns the best result; ties favour feasibility then lower time.
///
/// # Panics
///
/// Panics if `n_chains == 0`.
pub fn parallel_search(
    est: &Estimator,
    space: &SearchSpace,
    cfg: &McmcConfig,
    n_chains: usize,
) -> SearchResult {
    assert!(n_chains > 0, "need at least one chain");
    if n_chains == 1 {
        return search(est, space, cfg);
    }
    let mut results: Vec<SearchResult> = Vec::with_capacity(n_chains);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_chains)
            .map(|chain| {
                let mut chain_cfg = cfg.clone();
                // Chain 0 keeps the caller's seed so the multi-chain result
                // is always at least as good as the single-chain one.
                if chain > 0 {
                    chain_cfg.seed = cfg
                        .seed
                        .wrapping_mul(0x9e37_79b9)
                        .wrapping_add(chain as u64);
                }
                scope.spawn(move || search(est, space, &chain_cfg))
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("search chains do not panic"));
        }
    });

    // The winner carries every chain's telemetry (chains are distinguished
    // by their `chain=<seed>` label, so the merge is collision-free).
    let mut merged = MetricsRegistry::new();
    for r in &results {
        merged.merge(&r.telemetry);
    }
    let mut best = results
        .into_iter()
        .min_by(|a, b| {
            (!a.feasible, a.best_time_cost)
                .partial_cmp(&(!b.feasible, b.best_time_cost))
                .expect("costs are finite")
        })
        .expect("n_chains >= 1");
    best.telemetry = merged;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::heuristic_plan;
    use crate::space::PruneLevel;
    use real_cluster::ClusterSpec;
    use real_dataflow::algo::{ppo, RlhfConfig};
    use real_model::ModelSpec;
    use real_profiler::{ProfileConfig, Profiler};

    fn setup(nodes: u32, batch: u64) -> (Estimator, SearchSpace) {
        let cluster = ClusterSpec::h100(nodes);
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        let graph = ppo(&actor, &critic, &RlhfConfig::instruct_gpt(batch));
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 21);
        let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
        let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
        let space = SearchSpace::build(&cluster, &graph, PruneLevel::Aggressive);
        (est, space)
    }

    fn quick_cfg(seed: u64) -> McmcConfig {
        McmcConfig {
            beta: 1.0,
            max_steps: 3_000,
            time_limit: Duration::from_secs(20),
            seed,
            record_trace: true,
        }
    }

    #[test]
    fn search_improves_on_or_matches_greedy() {
        let (est, space) = setup(1, 128);
        let greedy = greedy_plan(&est, &space);
        let greedy_cost = est.cost(&greedy);
        let result = search(&est, &space, &quick_cfg(3));
        // The chain never returns anything worse than its start by the
        // penalized cost, and for this workload it must escape the greedy
        // plan's OOM into a feasible region.
        assert!(est.cost(&result.best_plan) <= greedy_cost + 1e-9);
        assert!(result.feasible);
        assert!(result.steps > 0);
    }

    #[test]
    fn search_beats_the_heuristic_plan() {
        // The headline claim at small scale: the searched plan is faster
        // than the symmetric heuristic.
        let (est, space) = setup(2, 512);
        let heuristic = heuristic_plan(&est);
        let heuristic_time = est.time_cost(&heuristic);
        let result = search(&est, &space, &quick_cfg(5));
        assert!(
            result.best_time_cost < heuristic_time,
            "searched {} vs heuristic {heuristic_time}",
            result.best_time_cost
        );
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let (est, space) = setup(1, 128);
        let mut cfg = quick_cfg(7);
        cfg.time_limit = Duration::from_secs(3600); // steps bound only
        cfg.max_steps = 500;
        let a = search(&est, &space, &cfg);
        let b = search(&est, &space, &cfg);
        assert_eq!(a.best_plan, b.best_plan);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn acceptance_rate_is_sane() {
        let (est, space) = setup(1, 128);
        let result = search(&est, &space, &quick_cfg(11));
        let rate = result.acceptance_rate();
        assert!(rate > 0.0 && rate < 1.0, "acceptance {rate}");
    }

    #[test]
    fn trace_grows_in_time_and_ends_at_best() {
        let (est, space) = setup(2, 512);
        let result = search(&est, &space, &quick_cfg(13));
        for w in result.trace.windows(2) {
            assert!(w[1].0 >= w[0].0, "elapsed must grow");
        }
        // The trace records the best plan's TimeCost at each improvement of
        // the *penalized* cost; the last entry is the final best.
        let last = result.trace.last().expect("trace has the initial entry");
        assert!((last.1 - result.best_time_cost).abs() < 1e-9);
        assert!(result.improvement_ratio() > 0.0);
    }

    #[test]
    fn telemetry_records_chain_trajectory() {
        let (est, space) = setup(1, 128);
        let cfg = quick_cfg(19);
        let result = search(&est, &space, &cfg);
        let chain = cfg.seed.to_string();
        let lbl: [(&str, &str); 1] = [("chain", chain.as_str())];
        let t = &result.telemetry;
        assert_eq!(
            t.get("search/steps", &lbl).unwrap().scalar(),
            result.steps as f64
        );
        assert_eq!(
            t.get("search/accepted", &lbl).unwrap().scalar(),
            result.accepted as f64
        );
        let rate = t.get("search/acceptance_rate", &lbl).unwrap().scalar();
        assert!((rate - result.acceptance_rate()).abs() < 1e-12);
        // Every step contributes one energy sample (stored or counted).
        match t.get("search/energy", &lbl).unwrap() {
            real_obs::MetricValue::Series(s) => {
                assert_eq!(s.points().len() as u64 + s.dropped(), result.steps);
            }
            other => panic!("expected series, got {}", other.kind()),
        }
        // The greedy start for this workload is OOM, so the chain must have
        // proposed penalized plans along the way.
        assert!(t.get("search/oom_penalty_hits", &lbl).unwrap().scalar() > 0.0);
    }

    #[test]
    fn parallel_search_merges_chain_telemetry() {
        let (est, space) = setup(1, 128);
        let mut cfg = quick_cfg(23);
        cfg.max_steps = 200;
        let multi = parallel_search(&est, &space, &cfg, 3);
        let chains = multi
            .telemetry
            .iter()
            .filter(|(k, _)| k.name() == "search/steps")
            .count();
        assert_eq!(chains, 3, "one steps counter per chain");
    }

    #[test]
    fn parallel_chains_no_worse_than_single() {
        let (est, space) = setup(1, 128);
        let mut cfg = quick_cfg(17);
        cfg.max_steps = 1_000;
        let single = search(&est, &space, &cfg);
        let multi = parallel_search(&est, &space, &cfg, 4);
        assert!(multi.best_time_cost <= single.best_time_cost + 1e-9);
    }
}
