//! Metropolis–Hastings search over execution plans (§5.2).
//!
//! Plans are sampled from the energy distribution
//! `P(p) ∝ exp(-β · cost(G_p))` by mutating one random call's assignment
//! per step and accepting with probability `min(1, P(p')/P(p))`. The best
//! *memory-feasible* plan by `TimeCost` seen anywhere along the chain is
//! the search output.
//!
//! One practical refinement over the paper's formula: the energy is the
//! *relative* cost change `β · (c' − c) / c`, which makes the temperature
//! scale-free — the same β works for a 5-second 7B iteration and a
//! 500-second 70B one, and for OOM-penalized costs (×α) the chain still
//! random-walks among infeasible plans instead of freezing.
//!
//! [`parallel_search`] runs independent chains on multiple cores and keeps
//! the global best — the multi-core extension the paper mentions as future
//! work. [`parallel_search_on`] decouples the logical chain count from the
//! worker-thread count: chains are seeded from RNG substreams of the
//! caller's seed and merged in chain order, so the chosen plan is
//! bit-identical whatever the thread count.
//!
//! # The fast path
//!
//! With [`McmcConfig::memo`] on (the default) proposals are priced through
//! [`real_estimator::PlanPricer`]: the augmented-graph structure is built
//! once per chain, per-call durations and realloc/transfer edge prices come
//! from a [`CostMemo`] keyed by `(call, assignment)`, and the peak-memory
//! check runs as an interval sweep instead of a cluster-sized per-GPU scan.
//! The cached values are outputs of the exact pricing functions the slow
//! path calls, so memo-on and memo-off searches return bit-identical plans
//! — `docs/SEARCH.md` spells out the full contract.

use crate::checkpoint::{project_onto, ChainState, SearchCheckpoint};
use crate::greedy::greedy_plan;
use crate::space::SearchSpace;
use real_dataflow::{CallAssignment, CallId, ExecutionPlan};
use real_estimator::{CostMemo, Estimator, MemoStats, PlanPricer};
use real_obs::MetricsRegistry;
use real_util::DeterministicRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Points kept per chain in the energy / best-so-far telemetry series
/// (later points are dropped and counted once a series fills up).
pub const TELEMETRY_SERIES_CAPACITY: usize = 4096;

/// MCMC configuration.
#[derive(Debug, Clone)]
pub struct McmcConfig {
    /// Sampling temperature β over the relative cost change (higher =
    /// greedier). Values around 4–8 accept mild regressions while rejecting
    /// leaps back into OOM territory.
    pub beta: f64,
    /// Hard step budget.
    pub max_steps: u64,
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// RNG seed.
    pub seed: u64,
    /// Record `(elapsed_secs, best_time_cost)` whenever the best improves
    /// (Fig. 13's improvement-ratio curves).
    pub record_trace: bool,
    /// Price proposals through the memoized incremental fast path
    /// ([`real_estimator::PlanPricer`]). Bit-identical results either way;
    /// off exists for benchmarking the speedup and as an escape hatch.
    pub memo: bool,
}

impl Default for McmcConfig {
    fn default() -> Self {
        Self {
            beta: 6.0,
            max_steps: 200_000,
            time_limit: Duration::from_secs(60),
            seed: 1,
            record_trace: true,
            memo: true,
        }
    }
}

/// Search output: the best plan plus chain statistics.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best memory-feasible plan found (falls back to the overall best-cost
    /// plan if nothing feasible was visited).
    pub best_plan: ExecutionPlan,
    /// `TimeCost` of the best plan.
    pub best_time_cost: f64,
    /// Whether the best plan fits device memory.
    pub feasible: bool,
    /// Steps taken.
    pub steps: u64,
    /// Accepted transitions.
    pub accepted: u64,
    /// `(elapsed_secs, best_time_cost)` improvement trace.
    pub trace: Vec<(f64, f64)>,
    /// Per-step chain telemetry, keyed by a `chain=<seed>` label: the
    /// `search/energy` and `search/best_time_cost` series over steps, and
    /// the `search/steps` / `search/accepted` / `search/oom_penalty_hits`
    /// counters plus the `search/acceptance_rate` gauge.
    pub telemetry: MetricsRegistry,
    /// Resumable chain state, captured at the end of the chain loop (the
    /// polish refines only `best_plan`). Serialize via
    /// [`SearchResult::checkpoint`] to continue this search later.
    pub chain: ChainState,
    /// Memo-cache counters accumulated by this search (all zero when
    /// [`McmcConfig::memo`] was off); for a merged parallel result, the sum
    /// over chains.
    pub memo: MemoStats,
}

impl SearchResult {
    /// Acceptance rate of the chain.
    pub fn acceptance_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.accepted as f64 / self.steps as f64
        }
    }

    /// Improvement ratio vs. the initial plan (Fig. 13's metric): initial
    /// best cost divided by final best cost.
    pub fn improvement_ratio(&self) -> f64 {
        match self.trace.first() {
            Some(&(_, first)) if self.best_time_cost > 0.0 => first / self.best_time_cost,
            _ => 1.0,
        }
    }

    /// Packages the resumable chain state and improvement trace for
    /// [`SearchCheckpoint::save`].
    pub fn checkpoint(&self) -> SearchCheckpoint {
        SearchCheckpoint {
            chain: self.chain.clone(),
            trace: self.trace.clone(),
        }
    }
}

/// Where a chain starts from.
enum ChainStart<'a> {
    /// The greedy initial plan (the paper's §5.2 setup).
    Greedy,
    /// A caller-supplied plan, e.g. an incumbent projected onto a shrunken
    /// space — the warm start a re-plan uses.
    Warm(&'a ExecutionPlan),
    /// A saved chain: restored RNG position, step count, incumbent and
    /// best. Costs are re-evaluated under the *current* estimator, so a
    /// resume under a degraded-health estimator re-ranks correctly.
    Resume(&'a SearchCheckpoint),
}

/// Runs one Metropolis–Hastings chain from the greedy initial plan.
pub fn search(est: &Estimator, space: &SearchSpace, cfg: &McmcConfig) -> SearchResult {
    run_chain(est, space, cfg, ChainStart::Greedy, None)
}

/// [`search`] sharing a caller-owned [`CostMemo`]: the cache is consumed
/// for the duration of the search and handed back (with whatever it
/// learned) on return. This is how the scheduler's per-(tenant, mesh)
/// candidate probes amortize pricing across probes — nested meshes revisit
/// the same `(call, assignment)` keys, so later probes run mostly on hits.
/// With `cfg.memo` off the cache is left untouched.
pub fn search_with_memo(
    est: &Estimator,
    space: &SearchSpace,
    cfg: &McmcConfig,
    memo: &mut CostMemo,
) -> SearchResult {
    run_chain(est, space, cfg, ChainStart::Greedy, Some(memo))
}

/// Runs one chain warm-started from `incumbent`, first projected onto
/// `space` via [`project_onto`] (assignments on vanished meshes are mapped
/// to their nearest surviving option). Used by the re-plan loop, where the
/// incumbent is the plan that was executing when a fault hit.
pub fn search_warm(
    est: &Estimator,
    space: &SearchSpace,
    cfg: &McmcConfig,
    incumbent: &ExecutionPlan,
) -> SearchResult {
    let start = project_onto(incumbent, est, space);
    run_chain(est, space, cfg, ChainStart::Warm(&start), None)
}

/// [`search_warm`] sharing a caller-owned [`CostMemo`]; see
/// [`search_with_memo`] for the sharing contract.
pub fn search_warm_with_memo(
    est: &Estimator,
    space: &SearchSpace,
    cfg: &McmcConfig,
    incumbent: &ExecutionPlan,
    memo: &mut CostMemo,
) -> SearchResult {
    let start = project_onto(incumbent, est, space);
    run_chain(est, space, cfg, ChainStart::Warm(&start), Some(memo))
}

/// Resumes a checkpointed chain: the RNG position, step count, incumbent,
/// and best are restored, then the chain continues while `steps <
/// cfg.max_steps`. The annealing schedule follows the *new* budget, so a
/// resumed chain is not bit-equal to an uninterrupted longer run unless the
/// budgets match; it is, however, fully deterministic given `(checkpoint,
/// cfg)`.
pub fn resume(
    est: &Estimator,
    space: &SearchSpace,
    cfg: &McmcConfig,
    checkpoint: &SearchCheckpoint,
) -> SearchResult {
    run_chain(est, space, cfg, ChainStart::Resume(checkpoint), None)
}

/// The chain's pricing backend: the plain estimator, or the memoized
/// incremental fast path. Both return bit-identical values for every query
/// the chain makes, so the choice affects wall-clock only.
enum Eval<'a> {
    Plain(&'a Estimator),
    Memo(Box<PlanPricer<'a>>),
}

impl<'a> Eval<'a> {
    fn new(est: &'a Estimator, use_memo: bool, seed: Option<CostMemo>) -> Self {
        if use_memo {
            let pricer = match seed {
                Some(memo) => PlanPricer::with_memo(est, memo),
                None => PlanPricer::new(est),
            };
            Eval::Memo(Box::new(pricer))
        } else {
            Eval::Plain(est)
        }
    }

    fn cost(&mut self, plan: &ExecutionPlan) -> f64 {
        match self {
            Eval::Plain(est) => est.cost(plan),
            Eval::Memo(p) => p.cost(plan),
        }
    }

    fn time_cost(&mut self, plan: &ExecutionPlan) -> f64 {
        match self {
            Eval::Plain(est) => est.time_cost(plan),
            Eval::Memo(p) => p.time_cost(plan),
        }
    }

    fn mem_ok(&mut self, plan: &ExecutionPlan) -> bool {
        match self {
            Eval::Plain(est) => est.mem_ok(plan),
            Eval::Memo(p) => p.mem_ok(plan),
        }
    }

    /// Price of `plan` with one call reassigned — the proposal shape. The
    /// fast path prices it without materializing the perturbed plan.
    fn cost_checked_perturbed(
        &mut self,
        plan: &ExecutionPlan,
        call: CallId,
        a: CallAssignment,
    ) -> (f64, bool) {
        match self {
            Eval::Plain(est) => {
                let proposal = plan
                    .with_assignment(call, a)
                    .expect("options are internally consistent");
                est.cost_checked(&proposal)
            }
            Eval::Memo(p) => p.cost_checked_perturbed(plan, call, a),
        }
    }

    fn memo_stats(&self) -> MemoStats {
        match self {
            Eval::Plain(_) => MemoStats::default(),
            Eval::Memo(p) => p.memo_stats(),
        }
    }

    fn into_memo(self) -> Option<CostMemo> {
        match self {
            Eval::Plain(_) => None,
            Eval::Memo(p) => Some(p.into_memo()),
        }
    }
}

fn run_chain(
    est: &Estimator,
    space: &SearchSpace,
    cfg: &McmcConfig,
    start_from: ChainStart,
    external_memo: Option<&mut CostMemo>,
) -> SearchResult {
    let start = Instant::now();
    let n_calls = space.n_calls();

    let mut external_memo = external_memo;
    let seed_memo = match (&mut external_memo, cfg.memo) {
        (Some(slot), true) => Some(std::mem::take(*slot)),
        _ => None,
    };
    let mut eval = Eval::new(est, cfg.memo, seed_memo);
    let memo_before = eval.memo_stats();

    let (mut rng, mut current, mut steps, mut accepted, prior_best, mut trace) = match start_from {
        ChainStart::Greedy => (
            DeterministicRng::from_seed(cfg.seed).derive("mcmc"),
            greedy_plan(est, space),
            0,
            0,
            None,
            Vec::new(),
        ),
        ChainStart::Warm(plan) => (
            DeterministicRng::from_seed(cfg.seed).derive("mcmc"),
            plan.clone(),
            0,
            0,
            None,
            Vec::new(),
        ),
        ChainStart::Resume(ckpt) => (
            DeterministicRng::from_state(ckpt.chain.rng),
            ckpt.chain.incumbent.clone(),
            ckpt.chain.steps,
            ckpt.chain.accepted,
            Some(ckpt.chain.best.clone()),
            ckpt.trace.clone(),
        ),
    };
    let mut current_cost = eval.cost(&current);

    let chain = cfg.seed.to_string();
    let labels: [(&str, &str); 1] = [("chain", chain.as_str())];
    let mut telemetry = MetricsRegistry::new();

    // The penalized §5.2 cost already orders infeasible plans after
    // feasible ones (×α), so tracking the best by penalized cost needs just
    // one estimator call per step.
    let (mut best_plan, mut best_cost) = match prior_best {
        Some(best) => {
            let cost = eval.cost(&best);
            (best, cost)
        }
        None => (current.clone(), current_cost),
    };
    if cfg.record_trace && trace.is_empty() {
        trace.push((0.0, eval.time_cost(&best_plan)));
    }

    while steps < cfg.max_steps && start.elapsed() < cfg.time_limit {
        steps += 1;
        // Propose: re-draw one call's assignment uniformly from its options.
        let call = CallId(rng.index(n_calls));
        let opts = space.options(call.0);
        let proposal_assignment = opts[rng.index(opts.len())];
        // Priced as a one-call perturbation of the incumbent: the fast path
        // re-uses every cached sub-result the perturbation did not touch.
        let (proposal_cost, oom_penalized) =
            eval.cost_checked_perturbed(&current, call, proposal_assignment);
        if oom_penalized {
            telemetry.counter_inc("search/oom_penalty_hits", &labels);
        }

        // Metropolis acceptance over the scale-free relative energy, with a
        // linear annealing schedule: the chain explores early and freezes
        // toward the step budget.
        let progress = steps as f64 / cfg.max_steps as f64;
        let beta = cfg.beta * (1.0 + 3.0 * progress);
        let delta = (proposal_cost - current_cost) / current_cost.max(f64::MIN_POSITIVE);
        let accept_p = (-beta * delta).exp().min(1.0);
        if rng.uniform() < accept_p {
            current = current
                .with_assignment(call, proposal_assignment)
                .expect("options are internally consistent");
            current_cost = proposal_cost;
            accepted += 1;

            if current_cost < best_cost {
                best_plan = current.clone();
                best_cost = current_cost;
                let best_time = eval.time_cost(&best_plan);
                if cfg.record_trace {
                    trace.push((start.elapsed().as_secs_f64(), best_time));
                }
                telemetry.series_push(
                    "search/best_time_cost",
                    &labels,
                    TELEMETRY_SERIES_CAPACITY,
                    steps as f64,
                    best_time,
                );
            }
        }
        telemetry.series_push(
            "search/energy",
            &labels,
            TELEMETRY_SERIES_CAPACITY,
            steps as f64,
            current_cost,
        );
    }

    // Capture the resumable chain state *before* the polish: the polish
    // only refines the returned best plan, so a resume re-enters the chain
    // exactly where the sampler stopped.
    let chain_state = ChainState {
        seed: cfg.seed,
        max_steps: cfg.max_steps,
        incumbent: current.clone(),
        incumbent_cost: current_cost,
        best: best_plan.clone(),
        best_cost,
        rng: rng.state(),
        steps,
        accepted,
    };

    // Coordinate-descent polish: sweep the calls, replacing each assignment
    // with its best alternative while the others stay fixed. Converges to a
    // local optimum of the same cost the chain sampled; bounded by the
    // remaining wall-clock budget.
    let mut improved = true;
    while improved && start.elapsed() < cfg.time_limit {
        improved = false;
        for call in 0..n_calls {
            if start.elapsed() >= cfg.time_limit {
                break;
            }
            for &opt in space.options(call) {
                if opt == *best_plan.assignment(CallId(call)) {
                    continue;
                }
                let (cost, _) = eval.cost_checked_perturbed(&best_plan, CallId(call), opt);
                if cost < best_cost {
                    best_plan = best_plan
                        .with_assignment(CallId(call), opt)
                        .expect("options are internally consistent");
                    best_cost = cost;
                    improved = true;
                    if cfg.record_trace {
                        trace.push((start.elapsed().as_secs_f64(), eval.time_cost(&best_plan)));
                    }
                }
            }
        }
    }

    telemetry.counter_add("search/steps", &labels, steps as f64);
    telemetry.counter_add("search/accepted", &labels, accepted as f64);
    telemetry.gauge_set(
        "search/acceptance_rate",
        &labels,
        if steps == 0 {
            0.0
        } else {
            accepted as f64 / steps as f64
        },
    );
    let best_time_cost = eval.time_cost(&best_plan);
    telemetry.gauge_set("search/best_time_cost_final", &labels, best_time_cost);
    let feasible = eval.mem_ok(&best_plan);

    // Memo accounting: report only this search's deltas (a shared cache
    // arrives with history), then hand a shared cache back to its owner.
    let memo_stats = eval.memo_stats().since(memo_before);
    telemetry.counter_add("search/memo_hits", &labels, memo_stats.hits as f64);
    telemetry.counter_add("search/memo_misses", &labels, memo_stats.misses as f64);
    telemetry.ratio_gauge(
        "search/memo_hit_rate",
        &labels,
        memo_stats.hits as f64,
        (memo_stats.hits + memo_stats.misses) as f64,
    );
    if let Some(slot) = external_memo {
        if let Some(memo) = eval.into_memo() {
            *slot = memo;
        }
    }

    SearchResult {
        best_time_cost,
        feasible,
        best_plan,
        steps,
        accepted,
        trace,
        telemetry,
        chain: chain_state,
        memo: memo_stats,
    }
}

/// The seed chain `k` of a parallel search runs with: chain 0 keeps the
/// caller's seed (so the multi-chain result is always at least as good as
/// the single-chain one), later chains draw from the `"chain"` RNG
/// substream of that seed. Pure — the whole determinism contract of
/// [`parallel_search_on`] reduces to this function plus ordered merging.
pub fn chain_seed(seed: u64, chain: usize) -> u64 {
    if chain == 0 {
        seed
    } else {
        DeterministicRng::from_seed(seed)
            .derive("chain")
            .derive_index(chain as u64)
            .next_u64()
    }
}

/// Deterministically merges per-chain results (in chain order): telemetry
/// is unioned (chains are distinguished by their `chain=<seed>` label, so
/// the merge is collision-free), memo counters sum, and the winner is the
/// first chain with the best `(feasibility, TimeCost)` key.
///
/// The merge depends only on the *list* — never on thread scheduling — so
/// a parallel search returns a byte-identical plan for any thread count.
///
/// # Panics
///
/// Panics if `results` is empty.
pub fn merge_results(results: Vec<SearchResult>) -> SearchResult {
    let mut merged = MetricsRegistry::new();
    let mut memo = MemoStats::default();
    for r in &results {
        merged.merge(&r.telemetry);
        memo = memo.merged(r.memo);
    }
    let mut best = results
        .into_iter()
        .min_by(|a, b| {
            (!a.feasible, a.best_time_cost)
                .partial_cmp(&(!b.feasible, b.best_time_cost))
                .expect("costs are finite")
        })
        .expect("at least one chain result");
    best.telemetry = merged;
    best.memo = memo;
    best
}

/// Runs `n_chains` independent chains across worker threads (derived
/// seeds) and returns the best result; ties favour feasibility then lower
/// time. Shorthand for [`parallel_search_on`] with one thread per chain.
///
/// # Panics
///
/// Panics if `n_chains == 0`.
pub fn parallel_search(
    est: &Estimator,
    space: &SearchSpace,
    cfg: &McmcConfig,
    n_chains: usize,
) -> SearchResult {
    parallel_search_on(est, space, cfg, n_chains, n_chains)
}

/// Runs `n_chains` logical chains over a pool of `threads` workers.
///
/// The logical chain set is fixed up front ([`chain_seed`]) and each chain
/// is fully determined by its own config, so workers can pick chains off a
/// shared queue in any order; results are slotted by chain index and merged
/// with [`merge_results`]. Consequence: for step-bounded configs the chosen
/// plan is **bit-identical for any `threads`** — 1, 2, or the machine's
/// core count — which is what lets operators crank parallelism without
/// losing reproducibility (see `docs/SEARCH.md`).
///
/// # Panics
///
/// Panics if `n_chains == 0` or `threads == 0`.
pub fn parallel_search_on(
    est: &Estimator,
    space: &SearchSpace,
    cfg: &McmcConfig,
    n_chains: usize,
    threads: usize,
) -> SearchResult {
    assert!(n_chains > 0, "need at least one chain");
    assert!(threads > 0, "need at least one worker thread");
    if n_chains == 1 {
        return search(est, space, cfg);
    }
    let workers = threads.min(n_chains);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SearchResult>>> = (0..n_chains).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let chain = next.fetch_add(1, Ordering::Relaxed);
                if chain >= n_chains {
                    break;
                }
                let mut chain_cfg = cfg.clone();
                chain_cfg.seed = chain_seed(cfg.seed, chain);
                let result = search(est, space, &chain_cfg);
                *slots[chain].lock().expect("result slot not poisoned") = Some(result);
            });
        }
    });
    let results: Vec<SearchResult> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot not poisoned")
                .expect("every chain ran to completion")
        })
        .collect();
    merge_results(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::heuristic_plan;
    use crate::space::PruneLevel;
    use real_cluster::ClusterSpec;
    use real_dataflow::algo::{ppo, RlhfConfig};
    use real_model::ModelSpec;
    use real_profiler::{ProfileConfig, Profiler};

    fn setup(nodes: u32, batch: u64) -> (Estimator, SearchSpace) {
        let cluster = ClusterSpec::h100(nodes);
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        let graph = ppo(&actor, &critic, &RlhfConfig::instruct_gpt(batch));
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 21);
        let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
        let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
        let space = SearchSpace::build(&cluster, &graph, PruneLevel::Aggressive);
        (est, space)
    }

    fn quick_cfg(seed: u64) -> McmcConfig {
        McmcConfig {
            beta: 1.0,
            max_steps: 3_000,
            time_limit: Duration::from_secs(20),
            seed,
            record_trace: true,
            memo: true,
        }
    }

    #[test]
    fn search_improves_on_or_matches_greedy() {
        let (est, space) = setup(1, 128);
        let greedy = greedy_plan(&est, &space);
        let greedy_cost = est.cost(&greedy);
        let result = search(&est, &space, &quick_cfg(3));
        // The chain never returns anything worse than its start by the
        // penalized cost, and for this workload it must escape the greedy
        // plan's OOM into a feasible region.
        assert!(est.cost(&result.best_plan) <= greedy_cost + 1e-9);
        assert!(result.feasible);
        assert!(result.steps > 0);
    }

    #[test]
    fn search_beats_the_heuristic_plan() {
        // The headline claim at small scale: the searched plan is faster
        // than the symmetric heuristic.
        let (est, space) = setup(2, 512);
        let heuristic = heuristic_plan(&est);
        let heuristic_time = est.time_cost(&heuristic);
        let result = search(&est, &space, &quick_cfg(5));
        assert!(
            result.best_time_cost < heuristic_time,
            "searched {} vs heuristic {heuristic_time}",
            result.best_time_cost
        );
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let (est, space) = setup(1, 128);
        let mut cfg = quick_cfg(7);
        cfg.time_limit = Duration::from_secs(3600); // steps bound only
        cfg.max_steps = 500;
        let a = search(&est, &space, &cfg);
        let b = search(&est, &space, &cfg);
        assert_eq!(a.best_plan, b.best_plan);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn acceptance_rate_is_sane() {
        let (est, space) = setup(1, 128);
        let result = search(&est, &space, &quick_cfg(11));
        let rate = result.acceptance_rate();
        assert!(rate > 0.0 && rate < 1.0, "acceptance {rate}");
    }

    #[test]
    fn trace_grows_in_time_and_ends_at_best() {
        let (est, space) = setup(2, 512);
        let result = search(&est, &space, &quick_cfg(13));
        for w in result.trace.windows(2) {
            assert!(w[1].0 >= w[0].0, "elapsed must grow");
        }
        // The trace records the best plan's TimeCost at each improvement of
        // the *penalized* cost; the last entry is the final best.
        let last = result.trace.last().expect("trace has the initial entry");
        assert!((last.1 - result.best_time_cost).abs() < 1e-9);
        assert!(result.improvement_ratio() > 0.0);
    }

    #[test]
    fn telemetry_records_chain_trajectory() {
        let (est, space) = setup(1, 128);
        let cfg = quick_cfg(19);
        let result = search(&est, &space, &cfg);
        let chain = cfg.seed.to_string();
        let lbl: [(&str, &str); 1] = [("chain", chain.as_str())];
        let t = &result.telemetry;
        assert_eq!(
            t.get("search/steps", &lbl).unwrap().scalar(),
            result.steps as f64
        );
        assert_eq!(
            t.get("search/accepted", &lbl).unwrap().scalar(),
            result.accepted as f64
        );
        let rate = t.get("search/acceptance_rate", &lbl).unwrap().scalar();
        assert!((rate - result.acceptance_rate()).abs() < 1e-12);
        // Every step contributes one energy sample (stored or counted).
        match t.get("search/energy", &lbl).unwrap() {
            real_obs::MetricValue::Series(s) => {
                assert_eq!(s.points().len() as u64 + s.dropped(), result.steps);
            }
            other => panic!("expected series, got {}", other.kind()),
        }
        // The greedy start for this workload is OOM, so the chain must have
        // proposed penalized plans along the way.
        assert!(t.get("search/oom_penalty_hits", &lbl).unwrap().scalar() > 0.0);
    }

    #[test]
    fn parallel_search_merges_chain_telemetry() {
        let (est, space) = setup(1, 128);
        let mut cfg = quick_cfg(23);
        cfg.max_steps = 200;
        let multi = parallel_search(&est, &space, &cfg, 3);
        let chains = multi
            .telemetry
            .iter()
            .filter(|(k, _)| k.name() == "search/steps")
            .count();
        assert_eq!(chains, 3, "one steps counter per chain");
    }

    #[test]
    fn parallel_chains_no_worse_than_single() {
        let (est, space) = setup(1, 128);
        let mut cfg = quick_cfg(17);
        cfg.max_steps = 1_000;
        let single = search(&est, &space, &cfg);
        let multi = parallel_search(&est, &space, &cfg, 4);
        assert!(multi.best_time_cost <= single.best_time_cost + 1e-9);
    }

    /// Step-bounded config so results depend only on seeds, not wall clock.
    fn steps_only_cfg(seed: u64, max_steps: u64) -> McmcConfig {
        McmcConfig {
            beta: 1.0,
            max_steps,
            time_limit: Duration::from_secs(3600),
            seed,
            record_trace: false,
            memo: true,
        }
    }

    #[test]
    fn memo_on_and_off_return_bit_identical_results() {
        let (est, space) = setup(2, 512);
        let mut on = steps_only_cfg(29, 800);
        let mut off = on.clone();
        on.memo = true;
        off.memo = false;
        let a = search(&est, &space, &on);
        let b = search(&est, &space, &off);
        assert_eq!(a.best_plan, b.best_plan);
        assert_eq!(a.best_time_cost.to_bits(), b.best_time_cost.to_bits());
        assert_eq!((a.steps, a.accepted), (b.steps, b.accepted));
        assert_eq!(a.chain, b.chain, "chain state must match bit-for-bit");
        assert!(a.memo.hits > 0, "the fast path must actually hit");
        assert_eq!(b.memo, MemoStats::default());
    }

    #[test]
    fn parallel_best_plan_is_byte_identical_for_1_2_and_8_threads() {
        let (est, space) = setup(1, 128);
        let cfg = steps_only_cfg(31, 400);
        let results: Vec<SearchResult> = [1usize, 2, 8]
            .iter()
            .map(|&threads| parallel_search_on(&est, &space, &cfg, 8, threads))
            .collect();
        let reference = serde_json::to_string(&results[0].best_plan).unwrap();
        for r in &results[1..] {
            assert_eq!(
                serde_json::to_string(&r.best_plan).unwrap(),
                reference,
                "plan bytes must not depend on thread count"
            );
            assert_eq!(
                r.best_time_cost.to_bits(),
                results[0].best_time_cost.to_bits()
            );
            assert_eq!(
                (r.steps, r.accepted),
                (results[0].steps, results[0].accepted)
            );
            assert_eq!(r.memo, results[0].memo);
        }
    }

    #[test]
    fn shared_memo_carries_across_searches_and_reports_deltas() {
        let (est, space) = setup(1, 128);
        let cfg = steps_only_cfg(37, 300);
        let mut memo = real_estimator::CostMemo::new();
        let first = search_with_memo(&est, &space, &cfg, &mut memo);
        let second = search_with_memo(&est, &space, &cfg, &mut memo);
        // Same chain over a warm cache: almost everything hits.
        assert!(second.memo.misses < first.memo.misses);
        assert!(second.memo.hit_rate() > first.memo.hit_rate());
        // And the shared cache never changes the answer.
        assert_eq!(first.best_plan, second.best_plan);
        let cold = search(&est, &space, &cfg);
        assert_eq!(cold.best_plan, second.best_plan);
        assert_eq!(
            cold.best_time_cost.to_bits(),
            second.best_time_cost.to_bits()
        );
    }

    #[test]
    fn chain_seed_is_stable_and_collision_free_for_small_fleets() {
        assert_eq!(chain_seed(42, 0), 42, "chain 0 keeps the caller's seed");
        let seeds: Vec<u64> = (0..64).map(|c| chain_seed(42, c)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "derived seeds must not collide");
        // Deterministic: same inputs, same seeds.
        assert_eq!(
            seeds,
            (0..64).map(|c| chain_seed(42, c)).collect::<Vec<_>>()
        );
    }
}
