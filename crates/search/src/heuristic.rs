//! REAL-Heuristic (§8.1): the pre-training-inspired baseline plan. One
//! symmetric 3D strategy over the full cluster for every call — intra-node
//! TP, inter-node PP sized so the largest trainable model fits, DP
//! maximized with the remainder — plus per-call micro-batch counts chosen
//! minimally within memory.

use real_cluster::DeviceMesh;
use real_dataflow::{CallAssignment, CallId, ExecutionPlan};
use real_estimator::Estimator;
use real_model::{MemoryModel, ParallelStrategy};

/// Fraction of device memory the heuristic budget targets (leaves headroom
/// for fragmentation, like production launch configs do).
const MEM_BUDGET: f64 = 0.90;

/// Builds the REAL-Heuristic plan for the estimator's workflow.
///
/// # Panics
///
/// Panics if no symmetric configuration fits device memory at all (the
/// workload is simply too large for the cluster).
pub fn heuristic_plan(est: &Estimator) -> ExecutionPlan {
    let cluster = est.cluster();
    let graph = est.graph();
    let mesh = DeviceMesh::full(cluster);
    let n = mesh.n_gpus();
    let budget = (cluster.gpu.mem_capacity as f64 * MEM_BUDGET) as u64;

    // TP: as wide as the node allows, bounded by every model's KV heads.
    let max_tp_all = graph
        .calls()
        .iter()
        .map(|c| c.model.max_tp())
        .min()
        .expect("graphs are non-empty");
    let mut tp = cluster.gpus_per_node.min(max_tp_all as u32);
    while !n.is_multiple_of(tp) {
        tp /= 2;
    }

    // PP: smallest power-of-two divisor of the remainder such that the
    // heaviest trainable model's static memory fits; DP takes the rest.
    let max_static_model = graph
        .model_names()
        .iter()
        .filter(|m| graph.is_trainable(m))
        .map(|m| graph.call(graph.calls_of_model(m)[0]).model.clone())
        .max_by_key(|m| m.param_count())
        .expect("RLHF workflows train at least one model");
    let mm = MemoryModel::new(max_static_model);
    let rest = n / tp;
    let mut pp = 1;
    loop {
        assert!(
            pp <= rest,
            "no symmetric plan fits: model too large for cluster"
        );
        let s =
            ParallelStrategy::new(rest / pp, tp, pp, 1).expect("heuristic degrees are positive");
        if mm.static_optim_bytes(&s) + mm.weight_bytes_per_gpu(&s) <= budget {
            break;
        }
        pp *= 2;
        while pp <= rest && !rest.is_multiple_of(pp) {
            pp *= 2;
        }
    }
    let dp = rest / pp;

    // Per call: smallest power-of-two micro-batch count that fits active
    // memory next to every model's static share.
    let mut assignments = Vec::with_capacity(graph.n_calls());
    for call in 0..graph.n_calls() {
        let id = CallId(call);
        let mut mbs = 1;
        let assignment = loop {
            let s = ParallelStrategy::new(dp, tp, pp, mbs).expect("positive degrees");
            let a = CallAssignment::new(mesh, s).expect("strategy fills the full mesh");
            let candidate = clone_with(est, &assignments, id, a, graph.n_calls());
            if est.mem_ok(&candidate) || mbs >= 64 {
                break a;
            }
            mbs *= 2;
        };
        assignments.push(assignment);
    }
    ExecutionPlan::new(graph, cluster, assignments).expect("heuristic plan validates")
}

/// Builds a provisional full plan for memory checking: decided assignments
/// so far, `candidate` at position `id`, and `candidate` repeated for the
/// undecided tail (symmetric plans make this exact).
fn clone_with(
    est: &Estimator,
    decided: &[CallAssignment],
    id: CallId,
    candidate: CallAssignment,
    n_calls: usize,
) -> ExecutionPlan {
    let mut assignments: Vec<CallAssignment> = decided.to_vec();
    assignments.push(candidate);
    while assignments.len() < n_calls {
        assignments.push(candidate);
    }
    debug_assert_eq!(assignments[id.0], candidate);
    ExecutionPlan::new(est.graph(), est.cluster(), assignments)
        .expect("symmetric candidates validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use real_cluster::ClusterSpec;
    use real_dataflow::algo::{ppo, RlhfConfig};
    use real_model::ModelSpec;
    use real_profiler::{ProfileConfig, Profiler};

    fn estimator(nodes: u32, actor: ModelSpec, critic: ModelSpec, batch: u64) -> Estimator {
        let cluster = ClusterSpec::h100(nodes);
        let graph = ppo(&actor, &critic, &RlhfConfig::instruct_gpt(batch));
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 9);
        let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
        Estimator::new(cluster, graph, profiles).unwrap()
    }

    #[test]
    fn heuristic_7b_uses_full_node_tp_no_pp() {
        let est = estimator(
            2,
            ModelSpec::llama3_7b(),
            ModelSpec::llama3_7b().critic(),
            512,
        );
        let plan = heuristic_plan(&est);
        let a = plan.assignment(CallId(0));
        assert_eq!(a.strategy.tp(), 8);
        assert_eq!(a.strategy.pp(), 1, "7B fits without pipeline");
        assert_eq!(a.strategy.dp(), 2);
        assert_eq!(a.mesh.n_gpus(), 16);
    }

    #[test]
    fn heuristic_is_symmetric_across_calls() {
        let est = estimator(
            2,
            ModelSpec::llama3_7b(),
            ModelSpec::llama3_7b().critic(),
            512,
        );
        let plan = heuristic_plan(&est);
        let first = plan.assignment(CallId(0));
        for a in plan.assignments() {
            assert_eq!(a.mesh, first.mesh);
            assert_eq!(a.strategy.tp(), first.strategy.tp());
            assert_eq!(a.strategy.pp(), first.strategy.pp());
            assert_eq!(a.strategy.dp(), first.strategy.dp());
        }
    }

    #[test]
    fn heuristic_fits_memory() {
        let est = estimator(
            2,
            ModelSpec::llama3_7b(),
            ModelSpec::llama3_7b().critic(),
            512,
        );
        let plan = heuristic_plan(&est);
        assert!(est.mem_ok(&plan));
    }

    #[test]
    fn heuristic_70b_on_16_nodes_matches_table3_shape() {
        // Table 3: the 70B + 7B heuristic on 16 nodes uses TP 8, PP 4, DP 4.
        let est = estimator(
            16,
            ModelSpec::llama3_70b(),
            ModelSpec::llama3_7b().critic(),
            512,
        );
        let plan = heuristic_plan(&est);
        let a = plan.assignment(CallId(0));
        assert_eq!(a.strategy.tp(), 8);
        assert_eq!(a.strategy.pp(), 4, "70B needs 32-way model sharding");
        assert_eq!(a.strategy.dp(), 4);
        assert!(est.mem_ok(&plan));
    }
}
