//! Branch-and-bound brute force over the pruned option space — the
//! optimality reference for Fig. 15.
//!
//! The raw space is not enumerable (hundreds of options per call, six
//! calls), so, as recorded in DESIGN.md, the reference enumerates the same
//! pruned space the MCMC searches, truncated to the top-`k` options per
//! call by isolated duration, with an admissible lower bound: calls of the
//! same model must serialize (parameter-version edges), so the max over
//! models of the sum of per-call minimum durations never overestimates the
//! makespan.

use crate::space::SearchSpace;
use real_dataflow::{CallId, ExecutionPlan};
use real_estimator::Estimator;
use std::time::{Duration, Instant};

/// Brute-force configuration.
#[derive(Debug, Clone)]
pub struct BruteConfig {
    /// Options kept per call (top-k by isolated duration).
    pub top_k: usize,
    /// Wall-clock budget; the search returns the best found when exceeded.
    pub time_limit: Duration,
}

impl Default for BruteConfig {
    fn default() -> Self {
        Self {
            top_k: 12,
            time_limit: Duration::from_secs(600),
        }
    }
}

/// Result of the exhaustive search.
#[derive(Debug, Clone)]
pub struct BruteResult {
    /// The optimal plan over the truncated space (best found if the time
    /// limit was hit).
    pub best_plan: ExecutionPlan,
    /// Its `TimeCost`.
    pub best_time_cost: f64,
    /// Complete plans evaluated.
    pub evaluated: u64,
    /// Subtrees pruned by the bound.
    pub pruned: u64,
    /// Whether the enumeration finished within the time limit (result is
    /// provably optimal for the truncated space).
    pub exhaustive: bool,
}

/// Runs branch-and-bound over `space` truncated to `cfg.top_k` options per
/// call.
///
/// # Panics
///
/// Panics if the space is empty.
pub fn brute_force(est: &Estimator, space: &SearchSpace, cfg: &BruteConfig) -> BruteResult {
    let start = Instant::now();
    let graph = est.graph();
    let n = graph.n_calls();
    assert!(n > 0, "cannot search an empty workflow");

    // Truncate and sort each call's options by isolated duration.
    let small = space.truncated_by(cfg.top_k, |call, a| est.call_duration(CallId(call), a));

    // Per-model groups for the serialization lower bound.
    let model_of: Vec<usize> = {
        let names = graph.model_names();
        graph
            .calls()
            .iter()
            .map(|c| {
                names
                    .iter()
                    .position(|&m| m == c.model_name)
                    .expect("model listed")
            })
            .collect()
    };
    let n_models = graph.model_names().len();
    // min_dur[call] over the truncated options (options are sorted by
    // duration, so index 0 is the minimum).
    let min_dur: Vec<f64> = (0..n)
        .map(|c| est.call_duration(CallId(c), &small.options(c)[0]))
        .collect();

    let mut best_plan: Option<ExecutionPlan> = None;
    let mut best_cost = f64::INFINITY;
    let mut evaluated = 0u64;
    let mut pruned = 0u64;
    let mut exhaustive = true;

    // Iterative DFS over option indices.
    let mut choice = vec![0usize; n];
    let mut depth = 0usize;
    'dfs: loop {
        if start.elapsed() > cfg.time_limit {
            exhaustive = false;
            break;
        }
        if depth == n {
            // Complete plan: evaluate exactly.
            let assignments: Vec<_> = (0..n).map(|c| small.options(c)[choice[c]]).collect();
            if let Ok(plan) = ExecutionPlan::new(graph, est.cluster(), assignments) {
                evaluated += 1;
                let cost = est.cost(&plan);
                if cost < best_cost {
                    best_cost = cost;
                    best_plan = Some(plan);
                }
            }
            // Backtrack.
            loop {
                if depth == 0 {
                    break 'dfs;
                }
                depth -= 1;
                choice[depth] += 1;
                if choice[depth] < small.options(depth).len() {
                    depth += 1;
                    break;
                }
                choice[depth] = 0;
            }
            continue;
        }

        // Lower bound with calls < depth fixed, rest at their minima: the
        // per-model serialization bound.
        let mut per_model = vec![0.0f64; n_models];
        for c in 0..n {
            let d = if c < depth {
                est.call_duration(CallId(c), &small.options(c)[choice[c]])
            } else {
                min_dur[c]
            };
            per_model[model_of[c]] += d;
        }
        let lb = per_model.iter().cloned().fold(0.0, f64::max);
        if lb >= best_cost {
            pruned += 1;
            // Skip this subtree.
            loop {
                if depth == 0 {
                    break 'dfs;
                }
                depth -= 1;
                choice[depth] += 1;
                if choice[depth] < small.options(depth).len() {
                    depth += 1;
                    break;
                }
                choice[depth] = 0;
            }
            continue;
        }
        depth += 1;
    }

    let best_plan = best_plan.expect("at least one complete plan is evaluated");
    BruteResult {
        best_time_cost: est.time_cost(&best_plan),
        best_plan,
        evaluated,
        pruned,
        exhaustive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcmc::{search, McmcConfig};
    use crate::space::{PruneLevel, SearchSpace};
    use real_cluster::ClusterSpec;
    use real_dataflow::algo::{ppo, RlhfConfig};
    use real_model::ModelSpec;
    use real_profiler::{ProfileConfig, Profiler};

    fn setup(batch: u64) -> (Estimator, SearchSpace) {
        let cluster = ClusterSpec::h100(1);
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        let graph = ppo(&actor, &critic, &RlhfConfig::instruct_gpt(batch));
        let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 31);
        let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
        let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
        let space = SearchSpace::build(&cluster, &graph, PruneLevel::Aggressive);
        (est, space)
    }

    #[test]
    fn tiny_space_is_searched_exhaustively() {
        let (est, space) = setup(64);
        let cfg = BruteConfig {
            top_k: 3,
            time_limit: Duration::from_secs(120),
        };
        let r = brute_force(&est, &space, &cfg);
        assert!(r.exhaustive, "3^6 = 729 plans must enumerate quickly");
        assert!(r.evaluated + r.pruned > 0);
        assert!(r.best_time_cost.is_finite());
    }

    #[test]
    fn brute_force_is_at_least_as_good_as_any_truncated_plan() {
        let (est, space) = setup(64);
        let cfg = BruteConfig {
            top_k: 2,
            time_limit: Duration::from_secs(120),
        };
        let r = brute_force(&est, &space, &cfg);
        // Compare against the all-minimum (greedy-in-truncated) plan.
        let greedy: Vec<_> = (0..space.n_calls())
            .map(|c| {
                space
                    .truncated_by(2, |call, a| est.call_duration(CallId(call), a))
                    .options(c)[0]
            })
            .collect();
        let greedy_plan = ExecutionPlan::new(est.graph(), est.cluster(), greedy).unwrap();
        assert!(r.best_time_cost <= est.cost(&greedy_plan) + 1e-9);
    }

    #[test]
    fn mcmc_approaches_brute_force_optimum() {
        // Fig. 15: MCMC reaches >= 95% of the brute-force optimum quickly.
        let (est, space) = setup(64);
        let brute_cfg = BruteConfig {
            top_k: 4,
            time_limit: Duration::from_secs(300),
        };
        let optimal = brute_force(&est, &space, &brute_cfg);
        assert!(optimal.exhaustive);

        let mcmc_cfg = McmcConfig {
            beta: 1.0,
            max_steps: 5_000,
            time_limit: Duration::from_secs(60),
            seed: 5,
            record_trace: false,
            memo: true,
        };
        let result = search(&est, &space, &mcmc_cfg);
        // MCMC searches the *full* pruned space, so it may even beat the
        // truncated brute force; require it within 20% either way.
        assert!(
            result.best_time_cost <= optimal.best_time_cost * 1.2,
            "mcmc {} vs brute {}",
            result.best_time_cost,
            optimal.best_time_cost
        );
    }

    #[test]
    fn enumeration_is_bounded_by_truncated_space() {
        let (est, space) = setup(64);
        let cfg = BruteConfig {
            top_k: 4,
            time_limit: Duration::from_secs(300),
        };
        let r = brute_force(&est, &space, &cfg);
        // 4^6 complete plans at most; the bound may or may not fire on a
        // space this small, but evaluated + pruned work is bounded.
        assert!(r.evaluated >= 1);
        assert!(r.evaluated <= 4096, "evaluated {}", r.evaluated);
        assert!(r.exhaustive);
    }
}
