//! Shared utilities for the `real-rs` workspace.
//!
//! This crate hosts the small, dependency-light building blocks used by every
//! other crate in the workspace:
//!
//! - [`units`] — human-readable formatting of seconds, bytes, and rates, plus
//!   the `GiB`/`MiB` constants used by the memory model.
//! - [`stats`] — mean / median / percentile / linear-interpolation helpers used
//!   by the profiler and the figure harnesses.
//! - [`rng`] — deterministic, seed-derivable random number generators so every
//!   experiment is bit-reproducible.
//! - [`table`] — a tiny fixed-width table printer for the benchmark harnesses
//!   that regenerate the paper's tables and figures.
//!
//! # Examples
//!
//! ```
//! use real_util::units::{fmt_seconds, fmt_bytes};
//! assert_eq!(fmt_seconds(0.0123), "12.30ms");
//! assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MiB");
//! ```

pub mod rng;
pub mod stats;
pub mod table;
pub mod units;

pub use rng::{DeterministicRng, RngState};
pub use table::Table;
