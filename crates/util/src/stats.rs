//! Small statistics helpers shared by the profiler and the figure harnesses.

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
///
/// ```
/// assert_eq!(real_util::stats::mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(real_util::stats::mean(&[]), None);
/// ```
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Median of a slice (average of the two middle elements for even lengths).
/// Returns `None` for an empty slice.
///
/// ```
/// assert_eq!(real_util::stats::median(&[3.0, 1.0, 2.0]), Some(2.0));
/// assert_eq!(real_util::stats::median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
/// ```
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Linear-interpolated percentile `p` in `[0, 100]` of a slice.
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any value is NaN.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Sample standard deviation. Returns `None` if fewer than two samples.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// Piecewise-linear interpolation of `x` over sorted `(x, y)` knots.
///
/// Outside the knot range the nearest segment is extrapolated linearly; this
/// mirrors how ReaL's estimator extends profiled statistics beyond the
/// power-of-two grid (§5.1 of the paper).
///
/// # Panics
///
/// Panics if `knots` is empty or its x-coordinates are not strictly increasing.
///
/// ```
/// let knots = [(1.0, 10.0), (2.0, 20.0), (4.0, 30.0)];
/// assert_eq!(real_util::stats::lerp_knots(&knots, 3.0), 25.0);
/// assert_eq!(real_util::stats::lerp_knots(&knots, 8.0), 50.0); // extrapolated
/// ```
pub fn lerp_knots(knots: &[(f64, f64)], x: f64) -> f64 {
    assert!(!knots.is_empty(), "lerp_knots requires at least one knot");
    for w in knots.windows(2) {
        assert!(w[0].0 < w[1].0, "lerp_knots requires strictly increasing x");
    }
    if knots.len() == 1 {
        return knots[0].1;
    }
    // Pick the segment containing x, clamping to the first/last segment for
    // extrapolation.
    let seg = match knots.iter().position(|&(kx, _)| kx >= x) {
        Some(0) => 0,
        Some(i) => i - 1,
        None => knots.len() - 2,
    };
    let (x0, y0) = knots[seg];
    let (x1, y1) = knots[seg + 1];
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

/// Geometric mean of strictly positive samples. Returns `None` if empty or if
/// any value is not strictly positive.
pub fn geo_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_median_of_singleton() {
        assert_eq!(mean(&[5.0]), Some(5.0));
        assert_eq!(median(&[5.0]), Some(5.0));
    }

    #[test]
    fn percentile_endpoints_match_min_max() {
        let xs = [9.0, 1.0, 4.0, 7.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(9.0));
    }

    #[test]
    fn std_dev_known_value() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let sd = std_dev(&xs).unwrap();
        assert!((sd - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn std_dev_requires_two_samples() {
        assert_eq!(std_dev(&[1.0]), None);
    }

    #[test]
    fn lerp_exact_knots() {
        let knots = [(1.0, 10.0), (2.0, 20.0)];
        assert_eq!(lerp_knots(&knots, 1.0), 10.0);
        assert_eq!(lerp_knots(&knots, 2.0), 20.0);
    }

    #[test]
    fn lerp_extrapolates_below() {
        let knots = [(2.0, 20.0), (4.0, 40.0)];
        assert_eq!(lerp_knots(&knots, 1.0), 10.0);
    }

    #[test]
    fn geo_mean_rejects_nonpositive() {
        assert_eq!(geo_mean(&[1.0, 0.0]), None);
        assert_eq!(geo_mean(&[]), None);
        let g = geo_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn percentile_is_within_bounds(xs in proptest::collection::vec(-1e6..1e6f64, 1..50), p in 0.0..100.0f64) {
            let v = percentile(&xs, p).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }

        #[test]
        fn mean_is_within_bounds(xs in proptest::collection::vec(-1e6..1e6f64, 1..50)) {
            let m = mean(&xs).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }

        #[test]
        fn lerp_is_monotone_for_monotone_knots(x in 0.0..10.0f64) {
            let knots = [(0.0, 0.0), (2.0, 4.0), (5.0, 10.0), (8.0, 16.0)];
            let y = lerp_knots(&knots, x);
            prop_assert!((y - 2.0 * x).abs() < 1e-9);
        }
    }
}
