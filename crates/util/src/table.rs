//! A minimal fixed-width table printer used by the benchmark harnesses that
//! regenerate the paper's tables and figures.

use std::fmt::Write as _;

/// An in-memory table with a header row and string cells.
///
/// # Examples
///
/// ```
/// use real_util::Table;
/// let mut t = Table::new(vec!["model", "params"]);
/// t.row(vec!["7B".into(), "8.0e9".into()]);
/// let s = t.render();
/// assert!(s.contains("model"));
/// assert!(s.contains("8.0e9"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let sep = if i + 1 == ncols { "\n" } else { "  " };
                let _ = write!(out, "{cell:<width$}{sep}", width = widths[i]);
            }
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_separator_and_rows() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("1"));
        assert!(lines[3].starts_with("333"));
    }

    #[test]
    fn columns_align_to_widest_cell() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["long-cell".into(), "z".into()]);
        let s = t.render();
        // Header 'x' is padded to the width of 'long-cell'.
        assert!(s.lines().next().unwrap().starts_with("x        "));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["only"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(vec!["h"]);
        assert!(t.is_empty());
        t.row(vec!["v".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(vec!["h"]);
        t.row(vec!["v".into()]);
        assert_eq!(format!("{t}"), t.render());
    }
}
