//! Deterministic random number generation.
//!
//! Every stochastic component in `real-rs` (the MCMC search, profiling noise,
//! runtime jitter) draws from a [`DeterministicRng`], a thin newtype over
//! ChaCha8 that supports cheap, collision-resistant *stream derivation*: a
//! parent seed plus a label yields an independent child generator. This keeps
//! every experiment bit-reproducible while letting concurrent components (e.g.
//! parallel MCMC chains) own private streams.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seedable, portable RNG with labelled sub-stream derivation.
///
/// # Examples
///
/// ```
/// use real_util::DeterministicRng;
/// use rand::RngCore;
/// let mut a = DeterministicRng::from_seed(42);
/// let mut b = DeterministicRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Children with different labels are independent but reproducible.
/// let mut c1 = DeterministicRng::from_seed(42).derive("profiler");
/// let mut c2 = DeterministicRng::from_seed(42).derive("search");
/// assert_ne!(c1.next_u64(), c2.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    seed: u64,
    inner: ChaCha8Rng,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator identified by `label`.
    ///
    /// Children derived with equal `(seed, label)` pairs are identical;
    /// different labels produce statistically independent streams.
    pub fn derive(&self, label: &str) -> Self {
        Self::from_seed(self.seed ^ fnv1a(label.as_bytes()))
    }

    /// Derives an independent child generator identified by an index, e.g.
    /// one per parallel MCMC chain.
    pub fn derive_index(&self, index: u64) -> Self {
        Self::from_seed(self.seed ^ fnv1a(&index.to_le_bytes()) ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Samples a multiplicative noise factor `exp(N(0, sigma))`, clamped to
    /// `[1/4, 4]`. Used to perturb simulated kernel timings; `sigma = 0`
    /// yields exactly `1.0`.
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 1.0;
        }
        // Box-Muller transform.
        let u1: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.inner.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (z * sigma).exp().clamp(0.25, 4.0)
    }

    /// Uniformly samples an index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot sample an index from an empty range");
        self.inner.gen_range(0..len)
    }

    /// Samples a uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }
}

impl RngCore for DeterministicRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// FNV-1a hash used for label-based stream derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::from_seed(7);
        let mut b = DeterministicRng::from_seed(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::from_seed(1);
        let mut b = DeterministicRng::from_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_is_reproducible_and_label_sensitive() {
        let parent = DeterministicRng::from_seed(99);
        let mut x1 = parent.derive("x");
        let mut x2 = parent.derive("x");
        let mut y = parent.derive("y");
        let v = x1.next_u64();
        assert_eq!(v, x2.next_u64());
        assert_ne!(v, y.next_u64());
    }

    #[test]
    fn derive_index_distinct_streams() {
        let parent = DeterministicRng::from_seed(5);
        let mut a = parent.derive_index(0);
        let mut b = parent.derive_index(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn lognormal_zero_sigma_is_identity() {
        let mut rng = DeterministicRng::from_seed(3);
        assert_eq!(rng.lognormal_factor(0.0), 1.0);
    }

    #[test]
    fn lognormal_is_clamped_and_centered() {
        let mut rng = DeterministicRng::from_seed(11);
        let samples: Vec<f64> = (0..2000).map(|_| rng.lognormal_factor(0.05)).collect();
        assert!(samples.iter().all(|&f| (0.25..=4.0).contains(&f)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn index_stays_in_range() {
        let mut rng = DeterministicRng::from_seed(13);
        for _ in 0..100 {
            assert!(rng.index(5) < 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_of_empty_panics() {
        DeterministicRng::from_seed(0).index(0);
    }
}
