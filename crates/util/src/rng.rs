//! Deterministic random number generation.
//!
//! Every stochastic component in `real-rs` (the MCMC search, profiling noise,
//! runtime jitter) draws from a [`DeterministicRng`], a self-contained ChaCha8
//! generator that supports cheap, collision-resistant *stream derivation*: a
//! parent seed plus a label yields an independent child generator. This keeps
//! every experiment bit-reproducible while letting concurrent components (e.g.
//! parallel MCMC chains) own private streams. The implementation is inlined
//! (no external `rand` dependency) so the workspace builds offline.

use serde::{Deserialize, Serialize};

/// A serializable position within a [`DeterministicRng`] stream.
///
/// Captured with [`DeterministicRng::state`] and restored with
/// [`DeterministicRng::from_state`], so long-running stochastic processes
/// (the MCMC search in particular) can checkpoint across processes and
/// resume drawing the exact same sequence.
///
/// # Examples
///
/// ```
/// use real_util::DeterministicRng;
/// let mut rng = DeterministicRng::from_seed(42);
/// for _ in 0..37 {
///     rng.next_u32();
/// }
/// let state = rng.state();
/// let mut resumed = DeterministicRng::from_state(state);
/// assert_eq!(rng.next_u64(), resumed.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// The originating seed.
    pub seed: u64,
    /// Number of ChaCha8 blocks generated so far.
    pub blocks: u64,
    /// Read cursor into the buffered block (`16` = exhausted / none yet).
    pub cursor: u8,
}

/// A seedable, portable RNG with labelled sub-stream derivation.
///
/// # Examples
///
/// ```
/// use real_util::DeterministicRng;
/// let mut a = DeterministicRng::from_seed(42);
/// let mut b = DeterministicRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Children with different labels are independent but reproducible.
/// let mut c1 = DeterministicRng::from_seed(42).derive("profiler");
/// let mut c2 = DeterministicRng::from_seed(42).derive("search");
/// assert_ne!(c1.next_u64(), c2.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    seed: u64,
    core: ChaCha8Core,
    /// Buffered output block and the read cursor into it.
    block: [u32; 16],
    cursor: usize,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            core: ChaCha8Core::from_seed(seed),
            block: [0; 16],
            cursor: 16, // force a refill on first draw
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator identified by `label`.
    ///
    /// Children derived with equal `(seed, label)` pairs are identical;
    /// different labels produce statistically independent streams.
    pub fn derive(&self, label: &str) -> Self {
        Self::from_seed(self.seed ^ fnv1a(label.as_bytes()))
    }

    /// Derives an independent child generator identified by an index, e.g.
    /// one per parallel MCMC chain.
    pub fn derive_index(&self, index: u64) -> Self {
        Self::from_seed(self.seed ^ fnv1a(&index.to_le_bytes()) ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.block = self.core.next_block();
            self.cursor = 0;
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Samples a multiplicative noise factor `exp(N(0, sigma))`, clamped to
    /// `[1/4, 4]`. Used to perturb simulated kernel timings; `sigma = 0`
    /// yields exactly `1.0`.
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return 1.0;
        }
        // Box-Muller transform.
        let u1: f64 = self.uniform().max(f64::EPSILON);
        let u2: f64 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (z * sigma).exp().clamp(0.25, 4.0)
    }

    /// Uniformly samples an index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot sample an index from an empty range");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * len,
        // negligible for the option-space sizes used here.
        let len = len as u64;
        ((u128::from(self.next_u64()) * u128::from(len)) >> 64) as usize
    }

    /// Samples a uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Captures the stream position for later [`Self::from_state`] restore.
    pub fn state(&self) -> RngState {
        RngState {
            seed: self.seed,
            blocks: self.core.counter(),
            cursor: self.cursor as u8,
        }
    }

    /// Reconstructs a generator mid-stream from a captured [`RngState`]: the
    /// restored generator produces exactly the draws the original would have
    /// produced next.
    pub fn from_state(state: RngState) -> Self {
        let mut rng = Self::from_seed(state.seed);
        if state.cursor >= 16 {
            // No buffered block outstanding; next draw refills from `blocks`.
            rng.core.set_counter(state.blocks);
        } else {
            // Re-generate the buffered block (the counter increments back to
            // `blocks`) and restore the read cursor into it.
            rng.core.set_counter(state.blocks.wrapping_sub(1));
            rng.block = rng.core.next_block();
            rng.cursor = state.cursor as usize;
        }
        rng
    }
}

/// The ChaCha8 block function (RFC 8439 layout, 8 rounds), keyed from a
/// 64-bit seed the same way for every platform.
#[derive(Debug, Clone)]
struct ChaCha8Core {
    state: [u32; 16],
}

impl ChaCha8Core {
    fn from_seed(seed: u64) -> Self {
        // Expand the 64-bit seed to a 256-bit key with SplitMix64 so that
        // near-equal seeds produce unrelated keys.
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut sm);
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // state[12..14]: 64-bit block counter, state[14..16]: nonce (zero).
        Self { state }
    }

    fn next_block(&mut self) -> [u32; 16] {
        let mut working = self.state;
        for _ in 0..4 {
            // Two rounds per loop: a column round then a diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(self.state.iter()) {
            *w = w.wrapping_add(*s);
        }
        // Increment the 64-bit counter.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        working
    }

    /// The 64-bit block counter (number of blocks generated so far).
    fn counter(&self) -> u64 {
        (u64::from(self.state[13]) << 32) | u64::from(self.state[12])
    }

    fn set_counter(&mut self, blocks: u64) {
        self.state[12] = blocks as u32;
        self.state[13] = (blocks >> 32) as u32;
    }
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a hash used for label-based stream derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::from_seed(7);
        let mut b = DeterministicRng::from_seed(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::from_seed(1);
        let mut b = DeterministicRng::from_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_is_reproducible_and_label_sensitive() {
        let parent = DeterministicRng::from_seed(99);
        let mut x1 = parent.derive("x");
        let mut x2 = parent.derive("x");
        let mut y = parent.derive("y");
        let v = x1.next_u64();
        assert_eq!(v, x2.next_u64());
        assert_ne!(v, y.next_u64());
    }

    #[test]
    fn derive_index_distinct_streams() {
        let parent = DeterministicRng::from_seed(5);
        let mut a = parent.derive_index(0);
        let mut b = parent.derive_index(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn lognormal_zero_sigma_is_identity() {
        let mut rng = DeterministicRng::from_seed(3);
        assert_eq!(rng.lognormal_factor(0.0), 1.0);
    }

    #[test]
    fn lognormal_is_clamped_and_centered() {
        let mut rng = DeterministicRng::from_seed(11);
        let samples: Vec<f64> = (0..2000).map(|_| rng.lognormal_factor(0.05)).collect();
        assert!(samples.iter().all(|&f| (0.25..=4.0).contains(&f)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn index_stays_in_range() {
        let mut rng = DeterministicRng::from_seed(13);
        for _ in 0..100 {
            assert!(rng.index(5) < 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_of_empty_panics() {
        DeterministicRng::from_seed(0).index(0);
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = DeterministicRng::from_seed(17);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn state_restore_resumes_exactly() {
        // Every cursor position, including mid-block and block boundaries.
        for draws in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 100] {
            let mut rng = DeterministicRng::from_seed(77);
            for _ in 0..draws {
                rng.next_u32();
            }
            let mut resumed = DeterministicRng::from_state(rng.state());
            for i in 0..64 {
                assert_eq!(rng.next_u32(), resumed.next_u32(), "draws={draws} i={i}");
            }
        }
    }

    #[test]
    fn fresh_state_restores_to_fresh_stream() {
        let fresh = DeterministicRng::from_seed(9).state();
        assert_eq!(fresh.blocks, 0);
        assert_eq!(fresh.cursor, 16);
        let mut a = DeterministicRng::from_state(fresh);
        let mut b = DeterministicRng::from_seed(9);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn rng_state_round_trips_through_serde() {
        let mut rng = DeterministicRng::from_seed(123);
        rng.next_u64();
        rng.next_u32();
        let s = rng.state();
        let json = serde_json::to_string(&s).unwrap();
        let back: RngState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let mut resumed = DeterministicRng::from_state(back);
        assert_eq!(rng.next_u64(), resumed.next_u64());
    }

    #[test]
    fn fill_bytes_is_deterministic() {
        let mut a = DeterministicRng::from_seed(21);
        let mut b = DeterministicRng::from_seed(21);
        let mut buf_a = [0u8; 13];
        let mut buf_b = [0u8; 13];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
        assert!(buf_a.iter().any(|&x| x != 0));
    }
}
