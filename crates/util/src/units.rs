//! Unit constants and human-readable formatting for times, sizes, and rates.

/// One kibibyte in bytes.
pub const KIB: u64 = 1024;
/// One mebibyte in bytes.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte in bytes.
pub const GIB: u64 = 1024 * MIB;
/// One terabyte (decimal, as used in bandwidth specs) in bytes.
pub const TB: f64 = 1e12;
/// One gigabyte (decimal, as used in bandwidth specs) in bytes.
pub const GB: f64 = 1e9;
/// One teraflop per second.
pub const TFLOPS: f64 = 1e12;

/// Formats a duration given in seconds with an adaptive unit.
///
/// Values are rendered in the largest unit that keeps the mantissa ≥ 1:
/// seconds, milliseconds, microseconds, or nanoseconds. Negative durations
/// are prefixed with `-`.
///
/// # Examples
///
/// ```
/// assert_eq!(real_util::units::fmt_seconds(1.5), "1.50s");
/// assert_eq!(real_util::units::fmt_seconds(0.00052), "520.00us");
/// ```
pub fn fmt_seconds(secs: f64) -> String {
    let sign = if secs < 0.0 { "-" } else { "" };
    let s = secs.abs();
    if s >= 1.0 {
        format!("{sign}{s:.2}s")
    } else if s >= 1e-3 {
        format!("{sign}{:.2}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{sign}{:.2}us", s * 1e6)
    } else {
        format!("{sign}{:.2}ns", s * 1e9)
    }
}

/// Formats a byte count with an adaptive binary unit (B, KiB, MiB, GiB, TiB).
///
/// # Examples
///
/// ```
/// assert_eq!(real_util::units::fmt_bytes(512), "512B");
/// assert_eq!(real_util::units::fmt_bytes(2 * 1024 * 1024 * 1024), "2.00GiB");
/// ```
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [(u64, &str); 4] = [
        (1 << 40, "TiB"),
        (1 << 30, "GiB"),
        (1 << 20, "MiB"),
        (1 << 10, "KiB"),
    ];
    for (scale, name) in UNITS {
        if bytes >= scale {
            return format!("{:.2}{name}", bytes as f64 / scale as f64);
        }
    }
    format!("{bytes}B")
}

/// Formats a throughput expressed in items per second (e.g. tokens/s).
///
/// ```
/// assert_eq!(real_util::units::fmt_rate(1_234_000.0), "1.23M/s");
/// ```
pub fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}k/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.2}/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_pick_adaptive_units() {
        assert_eq!(fmt_seconds(2.0), "2.00s");
        assert_eq!(fmt_seconds(0.25), "250.00ms");
        assert_eq!(fmt_seconds(2.5e-5), "25.00us");
        assert_eq!(fmt_seconds(3.0e-9), "3.00ns");
    }

    #[test]
    fn seconds_handle_negative_and_zero() {
        assert_eq!(fmt_seconds(-0.5), "-500.00ms");
        assert_eq!(fmt_seconds(0.0), "0.00ns");
    }

    #[test]
    fn bytes_pick_adaptive_units() {
        assert_eq!(fmt_bytes(0), "0B");
        assert_eq!(fmt_bytes(1023), "1023B");
        assert_eq!(fmt_bytes(1024), "1.00KiB");
        assert_eq!(fmt_bytes(5 * MIB + MIB / 2), "5.50MiB");
        assert_eq!(fmt_bytes(1 << 41), "2.00TiB");
    }

    #[test]
    fn rates_pick_adaptive_units() {
        assert_eq!(fmt_rate(10.0), "10.00/s");
        assert_eq!(fmt_rate(2_500.0), "2.50k/s");
        assert_eq!(fmt_rate(7.2e9), "7.20G/s");
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(GIB, 1024 * 1024 * 1024);
        assert_eq!(MIB * 1024, GIB);
        assert!((TB / GB - 1000.0).abs() < 1e-9);
    }
}
