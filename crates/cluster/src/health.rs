//! Live cluster health: which GPUs are dead or slowed, and which device
//! meshes survive.
//!
//! The re-planning loop (see `real-runtime`) observes faults at runtime and
//! needs to answer two questions the static [`ClusterSpec`] cannot: *which
//! meshes are still usable* and *how much slower is a given mesh right now*.
//! [`ClusterHealth`] annotates the original cluster — GPU ids and the
//! cluster shape stay stable so timelines, fault clocks, and traces keep
//! indexing by the same global ids — and derives a *degraded* mesh set by
//! filtering the §4 enumeration instead of reshaping the cluster.

use crate::mesh::DeviceMesh;
use crate::spec::ClusterSpec;
use crate::GpuId;
use serde::{Deserialize, Serialize};

/// Default estimator penalty factor for a mesh containing a dead GPU: large
/// enough that the search avoids dead hardware whenever an alternative
/// exists, finite so a cluster with no clean mesh still ranks options.
pub const DEAD_PENALTY: f64 = 25.0;

/// Health of one GPU slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuHealth {
    /// Whether the GPU is considered alive (reachable within the re-plan
    /// policy's patience window).
    pub alive: bool,
    /// Multiplicative slowdown factor (`1.0` = nominal, `2.0` = half speed).
    pub slowdown: f64,
}

impl Default for GpuHealth {
    fn default() -> Self {
        Self {
            alive: true,
            slowdown: 1.0,
        }
    }
}

/// Live health state of a cluster: per-GPU liveness and slowdown factors.
///
/// # Examples
///
/// Deriving the surviving mesh set after a crash on `gpu3` — every mesh
/// containing the dead GPU is excluded, and slowed GPUs scale the factor
/// the estimator applies to calls placed on them:
///
/// ```
/// use real_cluster::{ClusterHealth, ClusterSpec, DeviceMesh, GpuId};
///
/// let cluster = ClusterSpec::h100(1);
/// let mut health = ClusterHealth::healthy(&cluster);
/// health.mark_dead(GpuId(3));
/// health.mark_slow(GpuId(6), 2.5);
///
/// let surviving = health.surviving_meshes();
/// assert!(surviving.iter().all(|m| !m.contains(GpuId(3))));
/// // 15 meshes on one node; 4 contain gpu3 (widths 1, 2, 4 and the node).
/// assert_eq!(surviving.len(), 11);
///
/// let slow = DeviceMesh::sub_node(&cluster, 0, 6, 1).unwrap();
/// assert_eq!(health.mesh_factor(&slow), 2.5);
/// let clean = DeviceMesh::sub_node(&cluster, 0, 0, 2).unwrap();
/// assert_eq!(health.mesh_factor(&clean), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterHealth {
    cluster: ClusterSpec,
    gpus: Vec<GpuHealth>,
    dead_penalty: f64,
}

impl ClusterHealth {
    /// An all-alive, nominal-speed view of `cluster`.
    pub fn healthy(cluster: &ClusterSpec) -> Self {
        Self {
            cluster: cluster.clone(),
            gpus: vec![GpuHealth::default(); cluster.total_gpus() as usize],
            dead_penalty: DEAD_PENALTY,
        }
    }

    /// Marks a GPU dead. Out-of-range ids are ignored.
    pub fn mark_dead(&mut self, gpu: GpuId) {
        if let Some(g) = self.gpus.get_mut(gpu.0 as usize) {
            g.alive = false;
        }
    }

    /// Records a slowdown factor for a GPU (max-combined with any existing
    /// factor; factors below 1.0 are clamped to nominal). Out-of-range ids
    /// are ignored.
    pub fn mark_slow(&mut self, gpu: GpuId, factor: f64) {
        if let Some(g) = self.gpus.get_mut(gpu.0 as usize) {
            g.slowdown = g.slowdown.max(factor.max(1.0));
        }
    }

    /// Overrides the estimator penalty applied to meshes with dead GPUs.
    pub fn with_dead_penalty(mut self, factor: f64) -> Self {
        self.dead_penalty = factor.max(1.0);
        self
    }

    /// Whether any GPU is dead or slowed.
    pub fn is_degraded(&self) -> bool {
        self.gpus.iter().any(|g| !g.alive || g.slowdown > 1.0)
    }

    /// Number of dead GPUs.
    pub fn n_dead(&self) -> usize {
        self.gpus.iter().filter(|g| !g.alive).count()
    }

    /// Number of alive-but-slowed GPUs.
    pub fn n_slow(&self) -> usize {
        self.gpus
            .iter()
            .filter(|g| g.alive && g.slowdown > 1.0)
            .count()
    }

    /// The dead GPU ids in ascending order.
    pub fn dead_gpus(&self) -> Vec<GpuId> {
        self.gpus
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.alive)
            .map(|(i, _)| GpuId(i as u32))
            .collect()
    }

    /// Whether every GPU in `mesh` is alive.
    pub fn mesh_is_healthy(&self, mesh: &DeviceMesh) -> bool {
        mesh.gpus()
            .all(|g| self.gpus.get(g.0 as usize).is_none_or(|h| h.alive))
    }

    /// The §4 mesh enumeration restricted to meshes with no dead GPUs —
    /// the *degraded* search space a re-plan runs over.
    pub fn surviving_meshes(&self) -> Vec<DeviceMesh> {
        DeviceMesh::enumerate(&self.cluster)
            .into_iter()
            .filter(|m| self.mesh_is_healthy(m))
            .collect()
    }

    /// The slowdown factor the estimator should apply to work placed on
    /// `mesh`: the max over member GPUs of each GPU's factor, where dead
    /// GPUs contribute the dead penalty. `1.0` for a fully healthy mesh.
    pub fn mesh_factor(&self, mesh: &DeviceMesh) -> f64 {
        mesh.gpus()
            .map(|g| match self.gpus.get(g.0 as usize) {
                Some(h) if !h.alive => self.dead_penalty,
                Some(h) => h.slowdown,
                None => 1.0,
            })
            .fold(1.0, f64::max)
    }

    /// The underlying (unreshaped) cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// A stable FNV-1a digest of the overlay's observable state (per-GPU
    /// liveness and slowdown factors plus the dead penalty). Two overlays
    /// that price every mesh identically hash identically; any
    /// `mark_dead`/`mark_slow`/`with_dead_penalty` change alters the digest.
    /// The estimator's memo cache stores this tag and drops its entries
    /// whenever it changes.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(&self.dead_penalty.to_bits().to_le_bytes());
        for g in &self.gpus {
            mix(&[u8::from(g.alive)]);
            mix(&g.slowdown.to_bits().to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_cluster_survives_everything() {
        let c = ClusterSpec::h100(2);
        let h = ClusterHealth::healthy(&c);
        assert!(!h.is_degraded());
        assert_eq!(h.n_dead(), 0);
        assert_eq!(h.surviving_meshes().len(), DeviceMesh::enumerate(&c).len());
        for m in DeviceMesh::enumerate(&c) {
            assert_eq!(h.mesh_factor(&m), 1.0);
        }
    }

    #[test]
    fn dead_gpu_excludes_containing_meshes() {
        let c = ClusterSpec::h100(2);
        let mut h = ClusterHealth::healthy(&c);
        h.mark_dead(GpuId(0));
        assert!(h.is_degraded());
        assert_eq!(h.n_dead(), 1);
        assert_eq!(h.dead_gpus(), vec![GpuId(0)]);
        let surviving = h.surviving_meshes();
        assert!(surviving.iter().all(|m| !m.contains(GpuId(0))));
        // Node 1 in full survives.
        assert!(surviving
            .iter()
            .any(|m| m.node_start() == 1 && m.n_gpus() == 8));
        // The full-cluster mesh does not.
        assert!(!surviving.iter().any(|m| m.n_gpus() == 16));
    }

    #[test]
    fn mesh_factor_is_max_over_members() {
        let c = ClusterSpec::h100(1);
        let mut h = ClusterHealth::healthy(&c);
        h.mark_slow(GpuId(1), 1.5);
        h.mark_slow(GpuId(2), 3.0);
        let pair = DeviceMesh::sub_node(&c, 0, 0, 2).unwrap(); // gpus 0,1
        assert_eq!(h.mesh_factor(&pair), 1.5);
        let quad = DeviceMesh::sub_node(&c, 0, 0, 4).unwrap(); // gpus 0..4
        assert_eq!(h.mesh_factor(&quad), 3.0);
    }

    #[test]
    fn mark_slow_max_combines_and_clamps() {
        let c = ClusterSpec::h100(1);
        let mut h = ClusterHealth::healthy(&c);
        h.mark_slow(GpuId(0), 2.0);
        h.mark_slow(GpuId(0), 1.2); // lower: keeps 2.0
        h.mark_slow(GpuId(0), 0.5); // below nominal: clamped
        let solo = DeviceMesh::sub_node(&c, 0, 0, 1).unwrap();
        assert_eq!(h.mesh_factor(&solo), 2.0);
        assert_eq!(h.n_slow(), 1);
    }

    #[test]
    fn dead_penalty_applies_and_is_overridable() {
        let c = ClusterSpec::h100(1);
        let mut h = ClusterHealth::healthy(&c);
        h.mark_dead(GpuId(0));
        let solo = DeviceMesh::sub_node(&c, 0, 0, 1).unwrap();
        assert_eq!(h.mesh_factor(&solo), DEAD_PENALTY);
        let h2 = h.clone().with_dead_penalty(100.0);
        assert_eq!(h2.mesh_factor(&solo), 100.0);
    }

    #[test]
    fn out_of_range_marks_are_ignored() {
        let c = ClusterSpec::h100(1);
        let mut h = ClusterHealth::healthy(&c);
        h.mark_dead(GpuId(99));
        h.mark_slow(GpuId(99), 5.0);
        assert!(!h.is_degraded());
    }

    #[test]
    fn health_round_trips_through_serde() {
        let c = ClusterSpec::h100(2);
        let mut h = ClusterHealth::healthy(&c);
        h.mark_dead(GpuId(3));
        h.mark_slow(GpuId(5), 2.0);
        let json = serde_json::to_string(&h).unwrap();
        let back: ClusterHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
