//! α–β cost models for the collectives ReaL issues.
//!
//! NCCL's ring and tree algorithms have well-known closed-form costs; the
//! runtime estimator (§5.1) approximates transfer time "with the data size
//! and the bandwidth instead of running a real NCCL operation", which is
//! precisely what these functions compute. Both the estimator and the
//! runtime engine charge communication through this one model so the two
//! stay comparable.

use crate::spec::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Communication cost calculator bound to a cluster's link parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommModel {
    bw_intra: f64,
    bw_inter: f64,
    lat_intra: f64,
    lat_inter: f64,
}

impl CommModel {
    /// Builds the model from a cluster spec.
    pub fn new(cluster: &ClusterSpec) -> Self {
        Self {
            bw_intra: cluster.intra_node_bw,
            bw_inter: cluster.inter_node_bw,
            lat_intra: cluster.intra_node_latency,
            lat_inter: cluster.inter_node_latency,
        }
    }

    /// Builds the model from *measured* link parameters — the profiler
    /// measures bandwidths and latencies (§5.1) and the estimator prices
    /// collectives from those measurements rather than ground truth.
    ///
    /// # Panics
    ///
    /// Panics if a bandwidth is non-positive or a latency negative.
    pub fn from_parameters(bw_intra: f64, bw_inter: f64, lat_intra: f64, lat_inter: f64) -> Self {
        assert!(
            bw_intra > 0.0 && bw_inter > 0.0,
            "bandwidths must be positive"
        );
        assert!(
            lat_intra >= 0.0 && lat_inter >= 0.0,
            "latencies must be non-negative"
        );
        Self {
            bw_intra,
            bw_inter,
            lat_intra,
            lat_inter,
        }
    }

    fn link(&self, within_node: bool) -> (f64, f64) {
        if within_node {
            (self.bw_intra, self.lat_intra)
        } else {
            (self.bw_inter, self.lat_inter)
        }
    }

    /// Ring all-reduce of `bytes` over a group of `n` ranks.
    ///
    /// Cost: `2(n-1)·α + 2(n-1)/n · bytes/β`. Returns 0 for `n <= 1`.
    pub fn all_reduce(&self, bytes: f64, n: u32, within_node: bool) -> f64 {
        debug_assert!(bytes >= 0.0);
        if n <= 1 {
            return 0.0;
        }
        let (bw, lat) = self.link(within_node);
        let steps = (n - 1) as f64;
        2.0 * steps * lat + 2.0 * steps / n as f64 * bytes / bw
    }

    /// Ring all-gather where each rank ends with `bytes` total payload.
    ///
    /// Cost: `(n-1)·α + (n-1)/n · bytes/β`. Returns 0 for `n <= 1`.
    pub fn all_gather(&self, bytes: f64, n: u32, within_node: bool) -> f64 {
        debug_assert!(bytes >= 0.0);
        if n <= 1 {
            return 0.0;
        }
        let (bw, lat) = self.link(within_node);
        let steps = (n - 1) as f64;
        steps * lat + steps / n as f64 * bytes / bw
    }

    /// Ring reduce-scatter of `bytes` of input per rank (same cost shape as
    /// all-gather).
    pub fn reduce_scatter(&self, bytes: f64, n: u32, within_node: bool) -> f64 {
        self.all_gather(bytes, n, within_node)
    }

    /// Binary-tree broadcast of `bytes` from one root to `n - 1` receivers.
    ///
    /// Cost: `ceil(log2 n)·α + bytes/β` (pipelined tree). Returns 0 for
    /// `n <= 1`.
    pub fn broadcast(&self, bytes: f64, n: u32, within_node: bool) -> f64 {
        debug_assert!(bytes >= 0.0);
        if n <= 1 {
            return 0.0;
        }
        let (bw, lat) = self.link(within_node);
        let hops = (32 - (n - 1).leading_zeros()) as f64; // ceil(log2 n)
        hops * lat + bytes / bw
    }

    /// Point-to-point send of `bytes`.
    pub fn p2p(&self, bytes: f64, within_node: bool) -> f64 {
        debug_assert!(bytes >= 0.0);
        let (bw, lat) = self.link(within_node);
        lat + bytes / bw
    }

    /// Host↔device copy of `bytes` over PCIe (used for offloading). PCIe 5
    /// x16 ≈ 55 GB/s effective.
    pub fn host_device(&self, bytes: f64) -> f64 {
        debug_assert!(bytes >= 0.0);
        const PCIE_BW: f64 = 55.0e9;
        5.0e-6 + bytes / PCIE_BW
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> CommModel {
        CommModel::new(&ClusterSpec::h100(2))
    }

    #[test]
    fn singleton_groups_are_free() {
        let m = model();
        assert_eq!(m.all_reduce(1e9, 1, true), 0.0);
        assert_eq!(m.all_gather(1e9, 0, true), 0.0);
        assert_eq!(m.broadcast(1e9, 1, false), 0.0);
    }

    #[test]
    fn all_reduce_is_twice_all_gather_bandwidth_term() {
        let m = model();
        // With zero latency links, AR = 2*AG exactly.
        let mut zero_lat = model();
        zero_lat.lat_intra = 0.0;
        let ar = zero_lat.all_reduce(1e9, 8, true);
        let ag = zero_lat.all_gather(1e9, 8, true);
        assert!((ar / ag - 2.0).abs() < 1e-9);
        assert!(m.all_reduce(1e9, 8, true) > ar); // latency adds cost
    }

    #[test]
    fn inter_node_costs_more() {
        let m = model();
        assert!(m.all_reduce(1e9, 8, false) > m.all_reduce(1e9, 8, true));
        assert!(m.p2p(1e8, false) > m.p2p(1e8, true));
    }

    #[test]
    fn broadcast_latency_scales_with_log_group() {
        let mut m = model();
        m.bw_intra = f64::INFINITY;
        let b2 = m.broadcast(0.0, 2, true);
        let b8 = m.broadcast(0.0, 8, true);
        assert!((b8 / b2 - 3.0).abs() < 1e-9); // log2(8)/log2(2)
    }

    #[test]
    fn ring_all_reduce_matches_closed_form() {
        let m = model();
        // n=4 within node: 2*3*lat + (2*3/4)*bytes/bw
        let bytes = 4.0e9;
        let expect = 2.0 * 3.0 * 3.0e-6 + 1.5 * bytes / 450.0e9;
        assert!((m.all_reduce(bytes, 4, true) - expect).abs() < 1e-12);
    }

    #[test]
    fn host_device_has_latency_floor() {
        let m = model();
        assert!(m.host_device(0.0) > 0.0);
        assert!(m.host_device(55.0e9) > 1.0);
    }

    proptest! {
        #[test]
        fn costs_monotone_in_bytes(bytes in 0.0..1e12f64, n in 2u32..64) {
            let m = model();
            let more = bytes * 2.0 + 1.0;
            prop_assert!(m.all_reduce(more, n, true) > m.all_reduce(bytes, n, true));
            prop_assert!(m.broadcast(more, n, false) > m.broadcast(bytes, n, false));
            prop_assert!(m.p2p(more, true) > m.p2p(bytes, true));
        }

        #[test]
        fn all_reduce_bandwidth_term_saturates(n in 2u32..512) {
            // The per-rank bandwidth term 2(n-1)/n approaches 2: cost for a
            // fixed payload is bounded regardless of group size (latency
            // aside).
            let mut m = model();
            m.lat_intra = 0.0;
            let c = m.all_reduce(1e9, n, true);
            prop_assert!(c <= 2.0 * 1e9 / 450.0e9 + 1e-9);
        }
    }
}
