//! Cluster partitioning for multi-tenant scheduling.
//!
//! The scheduler in `real-sched` divides one cluster between several tenant
//! experiments. Each tenant receives an *allocation* — a [`DeviceMesh`] it
//! owns exclusively — and plans its function calls only on meshes contained
//! in that allocation. This module provides the two primitives that layer
//! needs on top of the §4 mesh enumeration:
//!
//! - [`meshes_within`] — the enumeration restricted to one allocation
//!   (mirrors [`crate::ClusterHealth::surviving_meshes`], which restricts by
//!   liveness instead of ownership),
//! - [`enumerate_splits`] — every way to pick one candidate allocation per
//!   tenant such that the picks are pairwise disjoint, deterministically
//!   capped so the top-level allocation search stays bounded.
//!
//! Because §4 meshes are buddy-aligned, two allocations are either disjoint
//! or nested — so "pairwise non-overlapping" is exactly the partition
//! property the scheduler needs; no gerrymandered shapes can slip through.

use crate::mesh::DeviceMesh;
use crate::spec::ClusterSpec;
use crate::GpuId;

/// The §4 mesh enumeration of `cluster`, restricted to meshes wholly inside
/// the GPU set of `allocation`.
///
/// Generated directly via [`DeviceMesh::enumerate_within`] (work scales with
/// the allocation, not the cluster) but identical — order included — to
/// filtering the full enumeration, so scheduler candidate probes stay
/// bit-reproducible across this fast path.
///
/// # Examples
///
/// ```
/// use real_cluster::{partition, ClusterSpec, DeviceMesh};
///
/// let cluster = ClusterSpec::h100(2);
/// let node1 = DeviceMesh::whole_nodes(&cluster, 1, 1).unwrap();
/// let inside = partition::meshes_within(&cluster, &node1);
/// // One node yields the usual 15 meshes (14 sub-node slices + itself).
/// assert_eq!(inside.len(), 15);
/// assert!(inside.iter().all(|m| node1.contains_mesh(m)));
/// ```
pub fn meshes_within(cluster: &ClusterSpec, allocation: &DeviceMesh) -> Vec<DeviceMesh> {
    DeviceMesh::enumerate_within(cluster, allocation)
}

/// The §4 mesh enumeration restricted to meshes whose GPUs are all inside
/// an arbitrary owned GPU set (not necessarily one contiguous mesh) — used
/// when elastic rebalancing grows a tenant's holdings by whole freed meshes
/// that need not be adjacent to its original allocation.
pub fn meshes_within_gpus(cluster: &ClusterSpec, owned: &[GpuId]) -> Vec<DeviceMesh> {
    let mut mask = vec![false; cluster.total_gpus() as usize];
    for g in owned {
        if let Some(slot) = mask.get_mut(g.0 as usize) {
            *slot = true;
        }
    }
    DeviceMesh::enumerate(cluster)
        .into_iter()
        .filter(|m| m.gpus().all(|g| mask[g.0 as usize]))
        .collect()
}

/// The §4 mesh enumeration restricted to meshes whose GPUs are all *free*
/// under a per-GPU occupancy overlay (`free[g]` is `true` when `GpuId(g)`
/// is unleased) — the serving loop's live free-capacity view. Same order as
/// the full enumeration, so admission probes are bit-reproducible.
///
/// # Examples
///
/// ```
/// use real_cluster::{partition, ClusterSpec};
///
/// let cluster = ClusterSpec::h100(2);
/// // Node 0 leased out: only node-1 meshes remain.
/// let mut free = vec![true; 16];
/// for g in 0..8 { free[g] = false; }
/// let meshes = partition::free_meshes(&cluster, &free);
/// assert_eq!(meshes.len(), 15);
/// assert!(meshes.iter().all(|m| m.gpus().all(|g| g.0 >= 8)));
/// ```
///
/// # Panics
///
/// Panics if `free` is shorter than the cluster's GPU count.
pub fn free_meshes(cluster: &ClusterSpec, free: &[bool]) -> Vec<DeviceMesh> {
    assert!(
        free.len() >= cluster.total_gpus() as usize,
        "free overlay must cover every GPU"
    );
    DeviceMesh::enumerate(cluster)
        .into_iter()
        .filter(|m| m.gpus().all(|g| free[g.0 as usize]))
        .collect()
}

/// Enumerates every assignment of one allocation per tenant with pairwise
/// disjoint picks, where `options[i]` lists tenant `i`'s feasible candidate
/// allocations.
///
/// The depth-first enumeration is deterministic: splits are emitted in
/// lexicographic order of per-tenant option indices, and at most `cap`
/// splits are returned (the prefix of that order), so the top-level
/// allocation search is reproducible and bounded even on large clusters.
pub fn enumerate_splits(options: &[Vec<DeviceMesh>], cap: usize) -> Vec<Vec<DeviceMesh>> {
    let mut out = Vec::new();
    if options.is_empty() || cap == 0 {
        return out;
    }
    let mut picked: Vec<DeviceMesh> = Vec::with_capacity(options.len());
    dfs(options, cap, &mut picked, &mut out);
    out
}

fn dfs(
    options: &[Vec<DeviceMesh>],
    cap: usize,
    picked: &mut Vec<DeviceMesh>,
    out: &mut Vec<Vec<DeviceMesh>>,
) {
    if out.len() >= cap {
        return;
    }
    let depth = picked.len();
    if depth == options.len() {
        out.push(picked.clone());
        return;
    }
    for candidate in &options[depth] {
        if picked.iter().any(|m| m.overlaps(candidate)) {
            continue;
        }
        picked.push(*candidate);
        dfs(options, cap, picked, out);
        picked.pop();
        if out.len() >= cap {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meshes_within_full_is_whole_enumeration() {
        let c = ClusterSpec::h100(2);
        let full = DeviceMesh::full(&c);
        assert_eq!(
            meshes_within(&c, &full).len(),
            DeviceMesh::enumerate(&c).len()
        );
    }

    #[test]
    fn meshes_within_sub_node_allocation() {
        let c = ClusterSpec::h100(1);
        let half = DeviceMesh::sub_node(&c, 0, 0, 4).unwrap();
        let inside = meshes_within(&c, &half);
        // Widths 1 (4), 2 (2), 4 (1) inside gpus 0..4.
        assert_eq!(inside.len(), 7);
        assert!(inside.iter().all(|m| half.contains_mesh(m)));
    }

    #[test]
    fn meshes_within_gpus_matches_mesh_form_for_contiguous_sets() {
        let c = ClusterSpec::h100(2);
        let node0 = DeviceMesh::whole_nodes(&c, 0, 1).unwrap();
        let gpus: Vec<GpuId> = node0.gpus().collect();
        assert_eq!(meshes_within_gpus(&c, &gpus), meshes_within(&c, &node0));
    }

    #[test]
    fn meshes_within_gpus_spans_disjoint_holdings() {
        let c = ClusterSpec::h100(4);
        // Own nodes 0 and 2 (not buddy-adjacent): each node's 15 meshes
        // qualify, but no mesh spans both.
        let mut gpus: Vec<GpuId> = DeviceMesh::whole_nodes(&c, 0, 1).unwrap().gpus().collect();
        gpus.extend(DeviceMesh::whole_nodes(&c, 2, 1).unwrap().gpus());
        let inside = meshes_within_gpus(&c, &gpus);
        assert_eq!(inside.len(), 30);
        assert!(inside.iter().all(|m| m.n_nodes() == 1));
    }

    #[test]
    fn free_meshes_tracks_the_occupancy_overlay() {
        let c = ClusterSpec::h100(2);
        let all_free = vec![true; 16];
        assert_eq!(
            free_meshes(&c, &all_free),
            DeviceMesh::enumerate(&c),
            "empty overlay is the full enumeration, order included"
        );
        let mut half = vec![true; 16];
        for slot in half.iter_mut().take(8) {
            *slot = false;
        }
        let node1 = DeviceMesh::whole_nodes(&c, 1, 1).unwrap();
        assert_eq!(free_meshes(&c, &half), meshes_within(&c, &node1));
        assert!(free_meshes(&c, &[false; 16]).is_empty());
    }

    #[test]
    fn enumerate_splits_two_tenants_two_nodes() {
        let c = ClusterSpec::h100(2);
        let node0 = DeviceMesh::whole_nodes(&c, 0, 1).unwrap();
        let node1 = DeviceMesh::whole_nodes(&c, 1, 1).unwrap();
        let options = vec![vec![node0, node1], vec![node0, node1]];
        let splits = enumerate_splits(&options, 1 << 20);
        assert_eq!(splits, vec![vec![node0, node1], vec![node1, node0]]);
    }

    #[test]
    fn enumerate_splits_cap_is_deterministic_prefix() {
        let c = ClusterSpec::h100(4);
        let per_node: Vec<DeviceMesh> = (0..4)
            .map(|n| DeviceMesh::whole_nodes(&c, n, 1).unwrap())
            .collect();
        let options = vec![per_node.clone(), per_node.clone(), per_node.clone()];
        let all = enumerate_splits(&options, usize::MAX);
        assert_eq!(all.len(), 24); // 4 * 3 * 2 ordered disjoint picks
        let capped = enumerate_splits(&options, 5);
        assert_eq!(capped, all[..5].to_vec());
    }

    #[test]
    fn enumerate_splits_infeasible_overlap_yields_nothing() {
        let c = ClusterSpec::h100(1);
        let full = DeviceMesh::full(&c);
        let options = vec![vec![full], vec![full]];
        assert!(enumerate_splits(&options, 100).is_empty());
    }

    #[test]
    fn enumerate_splits_empty_inputs() {
        assert!(enumerate_splits(&[], 10).is_empty());
        let c = ClusterSpec::h100(1);
        let full = DeviceMesh::full(&c);
        assert!(enumerate_splits(&[vec![full]], 0).is_empty());
        // A tenant with no feasible option kills every split.
        assert!(enumerate_splits(&[vec![full], vec![]], 10).is_empty());
    }
}
