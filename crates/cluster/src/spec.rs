//! Cluster topology: nodes, GPUs per node, link parameters.

use crate::gpu::GpuSpec;
use serde::{Deserialize, Serialize};

/// A homogeneous GPU cluster, matching the paper's assumptions (§4): all
/// devices share one compute capability, one intra-node bandwidth, and one
/// inter-node bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of nodes (hosts).
    pub n_nodes: u32,
    /// GPUs per node. The paper's testbed uses 8; must be a power of two.
    pub gpus_per_node: u32,
    /// The accelerator model installed in every slot.
    pub gpu: GpuSpec,
    /// Per-GPU intra-node (NVLink) bandwidth, bytes/s.
    pub intra_node_bw: f64,
    /// Per-GPU inter-node (NIC) bandwidth, bytes/s.
    pub inter_node_bw: f64,
    /// Per-message latency for intra-node transfers, seconds.
    pub intra_node_latency: f64,
    /// Per-message latency for inter-node transfers, seconds.
    pub inter_node_latency: f64,
}

impl ClusterSpec {
    /// A cluster of `n_nodes` nodes with 8 H100s each, NVLink intra-node and
    /// a 3.2 Tbps RoCE fabric inter-node — the paper's testbed (§8).
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes == 0`.
    pub fn h100(n_nodes: u32) -> Self {
        assert!(n_nodes > 0, "cluster must have at least one node");
        Self {
            n_nodes,
            gpus_per_node: 8,
            gpu: GpuSpec::h100(),
            // NVLink 4: 450 GB/s per direction per GPU.
            intra_node_bw: 450.0e9,
            // 3.2 Tbps per node shared by 8 GPUs = 400 GB/s / 8.
            inter_node_bw: 50.0e9,
            intra_node_latency: 3.0e-6,
            inter_node_latency: 12.0e-6,
        }
    }

    /// Total number of GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.n_nodes * self.gpus_per_node
    }

    /// Bandwidth for a transfer that stays within a node (`true`) or crosses
    /// nodes (`false`).
    pub fn bandwidth(&self, within_node: bool) -> f64 {
        if within_node {
            self.intra_node_bw
        } else {
            self.inter_node_bw
        }
    }

    /// Latency counterpart of [`Self::bandwidth`].
    pub fn latency(&self, within_node: bool) -> f64 {
        if within_node {
            self.intra_node_latency
        } else {
            self.inter_node_latency
        }
    }

    /// Validates invariants the mesh enumeration relies on.
    ///
    /// # Errors
    ///
    /// Returns a message when a field violates its invariant (zero sizes,
    /// non-power-of-two GPUs per node, non-positive bandwidths).
    pub fn validate(&self) -> Result<(), String> {
        if self.n_nodes == 0 {
            return Err("n_nodes must be positive".into());
        }
        if self.gpus_per_node == 0 || !self.gpus_per_node.is_power_of_two() {
            return Err(format!(
                "gpus_per_node must be a positive power of two, got {}",
                self.gpus_per_node
            ));
        }
        if self.intra_node_bw <= 0.0 || self.inter_node_bw <= 0.0 {
            return Err("bandwidths must be positive".into());
        }
        if self.intra_node_latency < 0.0 || self.inter_node_latency < 0.0 {
            return Err("latencies must be non-negative".into());
        }
        crate::gpu::validate(&self.gpu)
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::h100(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_presets_validate() {
        for n in [1, 2, 16, 128] {
            ClusterSpec::h100(n).validate().unwrap();
        }
    }

    #[test]
    fn total_gpus() {
        assert_eq!(ClusterSpec::h100(16).total_gpus(), 128);
    }

    #[test]
    fn intra_node_is_faster_than_inter_node() {
        let c = ClusterSpec::h100(2);
        assert!(c.bandwidth(true) > c.bandwidth(false));
        assert!(c.latency(true) < c.latency(false));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        ClusterSpec::h100(0);
    }

    #[test]
    fn validate_rejects_non_power_of_two() {
        let mut c = ClusterSpec::h100(1);
        c.gpus_per_node = 6;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_bandwidth() {
        let mut c = ClusterSpec::h100(1);
        c.inter_node_bw = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cluster_spec_round_trips_through_serde() {
        let c = ClusterSpec::h100(16);
        let json = serde_json::to_string(&c).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
