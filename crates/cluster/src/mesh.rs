//! Device meshes (§4 of the paper): two-dimensional grids of GPUs that
//! execution plans assign to model function calls.
//!
//! The paper restricts meshes to shapes that let multiple meshes tile the
//! cluster exactly: either a contiguous slice of one node whose width is a
//! power of two dividing the node size (and aligned to its width), or a span
//! of whole nodes. We additionally require whole-node spans to be buddy
//! aligned (span length a power of two, start a multiple of the length),
//! which preserves exact tileability at every scale.

use crate::spec::ClusterSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Global GPU identifier: `node * gpus_per_node + local_index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GpuId(pub u32);

impl GpuId {
    /// The node hosting this GPU.
    pub fn node(self, gpus_per_node: u32) -> u32 {
        self.0 / gpus_per_node
    }

    /// The GPU's index within its node.
    pub fn local(self, gpus_per_node: u32) -> u32 {
        self.0 % gpus_per_node
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Errors from [`DeviceMesh`] constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// The mesh would extend past the cluster boundary.
    OutOfBounds(String),
    /// The shape violates the §4 enumeration rules.
    InvalidShape(String),
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::OutOfBounds(msg) => write!(f, "mesh out of bounds: {msg}"),
            MeshError::InvalidShape(msg) => write!(f, "invalid mesh shape: {msg}"),
        }
    }
}

impl std::error::Error for MeshError {}

/// A contiguous rectangle of GPUs.
///
/// Two flavours exist (see module docs): sub-node slices (`node_count == 1`,
/// `gpu_width < gpus_per_node`) and whole-node spans
/// (`gpu_width == gpus_per_node`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceMesh {
    node_start: u32,
    node_count: u32,
    gpu_start: u32,
    gpu_width: u32,
    gpus_per_node: u32,
}

impl DeviceMesh {
    /// Creates a sub-node mesh on `node` covering local GPUs
    /// `[gpu_start, gpu_start + width)`.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError`] if the slice is misaligned, its width is not a
    /// power of two dividing the node size, or it exceeds the cluster.
    pub fn sub_node(
        cluster: &ClusterSpec,
        node: u32,
        gpu_start: u32,
        width: u32,
    ) -> Result<Self, MeshError> {
        let m = cluster.gpus_per_node;
        if node >= cluster.n_nodes {
            return Err(MeshError::OutOfBounds(format!(
                "node {node} >= n_nodes {}",
                cluster.n_nodes
            )));
        }
        if width == 0 || width >= m || !width.is_power_of_two() {
            return Err(MeshError::InvalidShape(format!(
                "sub-node width {width} must be a power of two < {m}"
            )));
        }
        if !gpu_start.is_multiple_of(width) || gpu_start + width > m {
            return Err(MeshError::InvalidShape(format!(
                "slice [{gpu_start}, {}) misaligned for width {width}",
                gpu_start + width
            )));
        }
        Ok(Self {
            node_start: node,
            node_count: 1,
            gpu_start,
            gpu_width: width,
            gpus_per_node: m,
        })
    }

    /// Creates a whole-node mesh over nodes `[node_start, node_start + count)`.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError`] if the span is not buddy aligned (count a power
    /// of two, start a multiple of count) or exceeds the cluster.
    pub fn whole_nodes(
        cluster: &ClusterSpec,
        node_start: u32,
        count: u32,
    ) -> Result<Self, MeshError> {
        if count == 0 || !count.is_power_of_two() {
            return Err(MeshError::InvalidShape(format!(
                "node count {count} must be a positive power of two"
            )));
        }
        if !node_start.is_multiple_of(count) {
            return Err(MeshError::InvalidShape(format!(
                "node span start {node_start} misaligned for count {count}"
            )));
        }
        if node_start + count > cluster.n_nodes {
            return Err(MeshError::OutOfBounds(format!(
                "span [{node_start}, {}) exceeds {} nodes",
                node_start + count,
                cluster.n_nodes
            )));
        }
        Ok(Self {
            node_start,
            node_count: count,
            gpu_start: 0,
            gpu_width: cluster.gpus_per_node,
            gpus_per_node: cluster.gpus_per_node,
        })
    }

    /// The mesh covering the entire cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster.n_nodes` is not a power of two (all presets are).
    pub fn full(cluster: &ClusterSpec) -> Self {
        Self::whole_nodes(cluster, 0, cluster.n_nodes)
            .expect("full-cluster mesh must be constructible")
    }

    /// Enumerates every valid mesh in the cluster per the §4 rules.
    pub fn enumerate(cluster: &ClusterSpec) -> Vec<Self> {
        let mut out = Vec::with_capacity(Self::enumerate_count(cluster));
        // Sub-node slices.
        for node in 0..cluster.n_nodes {
            let mut w = 1;
            while w < cluster.gpus_per_node {
                let mut start = 0;
                while start + w <= cluster.gpus_per_node {
                    out.push(
                        Self::sub_node(cluster, node, start, w)
                            .expect("enumerated sub-node mesh must be valid"),
                    );
                    start += w;
                }
                w *= 2;
            }
        }
        // Whole-node buddy spans.
        let mut count = 1;
        while count <= cluster.n_nodes {
            let mut start = 0;
            while start + count <= cluster.n_nodes {
                if start % count == 0 {
                    out.push(
                        Self::whole_nodes(cluster, start, count)
                            .expect("enumerated node span must be valid"),
                    );
                }
                start += count;
            }
            count *= 2;
        }
        out
    }

    /// Number of meshes [`DeviceMesh::enumerate`] yields, in closed form.
    /// Lets callers pre-size buffers instead of growing them — noticeable at
    /// the ROADMAP's 8192-GPU scale where the enumeration has ~16k entries.
    pub fn enumerate_count(cluster: &ClusterSpec) -> usize {
        let mut per_node = 0usize;
        let mut w = 1;
        while w < cluster.gpus_per_node {
            per_node += (cluster.gpus_per_node / w) as usize;
            w *= 2;
        }
        let mut spans = 0usize;
        let mut count = 1;
        while count <= cluster.n_nodes {
            spans += (cluster.n_nodes / count) as usize;
            count *= 2;
        }
        cluster.n_nodes as usize * per_node + spans
    }

    /// The subset of [`DeviceMesh::enumerate`] contained in `region`,
    /// generated directly instead of filtering the full enumeration — the
    /// output (order included) is identical to
    /// `enumerate(cluster).into_iter().filter(|m| region.contains_mesh(m))`,
    /// but the work is proportional to the *region*, not the cluster. The
    /// scheduler prices thousands of candidate regions per plan, so at large
    /// cluster sizes this turns an `O(cluster)` scan per candidate into
    /// `O(region)`.
    ///
    /// Buddy alignment makes the direct walk exact: every valid region has a
    /// power-of-two extent with an aligned start on both axes, so the
    /// contained slices of width `w` are precisely those starting at
    /// `region.gpu_start + k·w`, and likewise for node spans.
    ///
    /// ```
    /// use real_cluster::{ClusterSpec, DeviceMesh};
    ///
    /// let cluster = ClusterSpec::h100(4);
    /// let region = DeviceMesh::whole_nodes(&cluster, 2, 2).unwrap();
    /// let direct = DeviceMesh::enumerate_within(&cluster, &region);
    /// let filtered: Vec<_> = DeviceMesh::enumerate(&cluster)
    ///     .into_iter()
    ///     .filter(|m| region.contains_mesh(m))
    ///     .collect();
    /// assert_eq!(direct, filtered);
    /// ```
    pub fn enumerate_within(cluster: &ClusterSpec, region: &Self) -> Vec<Self> {
        debug_assert_eq!(region.gpus_per_node, cluster.gpus_per_node);
        let mut out = Vec::new();
        let gpu_end = region.gpu_start + region.gpu_width;
        // Sub-node slices: meshes narrower than a node inside the region's
        // GPU window, for each region node.
        for node in region.node_start..region.node_start + region.node_count {
            let mut w = 1;
            while w < cluster.gpus_per_node {
                if w <= region.gpu_width {
                    let mut start = region.gpu_start;
                    while start + w <= gpu_end {
                        out.push(
                            Self::sub_node(cluster, node, start, w)
                                .expect("enumerated sub-node mesh must be valid"),
                        );
                        start += w;
                    }
                }
                w *= 2;
            }
        }
        // Whole-node buddy spans fit only when the region itself spans whole
        // nodes.
        if region.gpu_start == 0 && region.gpu_width == cluster.gpus_per_node {
            let mut count = 1;
            while count <= region.node_count {
                let mut start = region.node_start;
                while start + count <= region.node_start + region.node_count {
                    out.push(
                        Self::whole_nodes(cluster, start, count)
                            .expect("enumerated node span must be valid"),
                    );
                    start += count;
                }
                count *= 2;
            }
        }
        out
    }

    /// Number of GPUs in the mesh.
    pub fn n_gpus(&self) -> u32 {
        self.node_count * self.gpu_width
    }

    /// Number of nodes the mesh touches.
    pub fn n_nodes(&self) -> u32 {
        self.node_count
    }

    /// GPUs per node of the owning cluster (shape context for rank mapping).
    pub fn gpus_per_node(&self) -> u32 {
        self.gpus_per_node
    }

    /// First node of the mesh.
    pub fn node_start(&self) -> u32 {
        self.node_start
    }

    /// Local GPU offset on each node (non-zero only for sub-node slices).
    pub fn gpu_start(&self) -> u32 {
        self.gpu_start
    }

    /// GPUs used per node.
    pub fn gpu_width(&self) -> u32 {
        self.gpu_width
    }

    /// Whether this mesh is confined to part of a single node.
    pub fn is_sub_node(&self) -> bool {
        self.gpu_width < self.gpus_per_node
    }

    /// The global GPU at mesh-local `rank` (node-major, then local index).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.n_gpus()`.
    pub fn gpu_at(&self, rank: u32) -> GpuId {
        assert!(
            rank < self.n_gpus(),
            "rank {rank} out of mesh of {}",
            self.n_gpus()
        );
        let node = self.node_start + rank / self.gpu_width;
        let local = self.gpu_start + rank % self.gpu_width;
        GpuId(node * self.gpus_per_node + local)
    }

    /// Iterates the global GPU ids in rank order.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        (0..self.n_gpus()).map(|r| self.gpu_at(r))
    }

    /// Whether the mesh contains a given global GPU.
    pub fn contains(&self, gpu: GpuId) -> bool {
        let node = gpu.node(self.gpus_per_node);
        let local = gpu.local(self.gpus_per_node);
        node >= self.node_start
            && node < self.node_start + self.node_count
            && local >= self.gpu_start
            && local < self.gpu_start + self.gpu_width
    }

    /// Whether every GPU of `other` is also a GPU of this mesh. Used by the
    /// multi-tenant partitioner to restrict a tenant's search space to the
    /// meshes inside its allocation.
    pub fn contains_mesh(&self, other: &Self) -> bool {
        debug_assert_eq!(self.gpus_per_node, other.gpus_per_node);
        other.node_start >= self.node_start
            && other.node_start + other.node_count <= self.node_start + self.node_count
            && other.gpu_start >= self.gpu_start
            && other.gpu_start + other.gpu_width <= self.gpu_start + self.gpu_width
    }

    /// Whether two meshes share at least one GPU. Used by Algorithm 1 to
    /// serialize function calls placed on overlapping resources.
    pub fn overlaps(&self, other: &Self) -> bool {
        debug_assert_eq!(self.gpus_per_node, other.gpus_per_node);
        let nodes_overlap = self.node_start < other.node_start + other.node_count
            && other.node_start < self.node_start + self.node_count;
        if !nodes_overlap {
            return false;
        }
        self.gpu_start < other.gpu_start + other.gpu_width
            && other.gpu_start < self.gpu_start + self.gpu_width
    }

    /// Whether a group of `group_size` consecutive ranks starting at any
    /// multiple of `group_size` stays within a single node. Parallelization
    /// strategies map TP groups to consecutive ranks, so this decides whether
    /// TP collectives ride NVLink or the inter-node fabric.
    pub fn consecutive_group_within_node(&self, group_size: u32) -> bool {
        group_size <= self.gpu_width
    }
}

impl fmt::Display for DeviceMesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_sub_node() {
            write!(
                f,
                "node{}[gpu{}-{}]",
                self.node_start,
                self.gpu_start,
                self.gpu_start + self.gpu_width - 1
            )
        } else if self.node_count == 1 {
            write!(f, "node{}", self.node_start)
        } else {
            write!(
                f,
                "node[{}-{}]",
                self.node_start,
                self.node_start + self.node_count - 1
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cluster2() -> ClusterSpec {
        ClusterSpec::h100(2)
    }

    #[test]
    fn sub_node_alignment_enforced() {
        let c = cluster2();
        assert!(DeviceMesh::sub_node(&c, 0, 0, 2).is_ok());
        assert!(DeviceMesh::sub_node(&c, 0, 2, 2).is_ok());
        assert!(DeviceMesh::sub_node(&c, 0, 1, 2).is_err()); // misaligned
        assert!(DeviceMesh::sub_node(&c, 0, 0, 3).is_err()); // not power of two
        assert!(DeviceMesh::sub_node(&c, 0, 0, 8).is_err()); // full node is whole_nodes
        assert!(DeviceMesh::sub_node(&c, 2, 0, 2).is_err()); // node OOB
    }

    #[test]
    fn whole_nodes_buddy_alignment() {
        let c = ClusterSpec::h100(4);
        assert!(DeviceMesh::whole_nodes(&c, 0, 2).is_ok());
        assert!(DeviceMesh::whole_nodes(&c, 2, 2).is_ok());
        assert!(DeviceMesh::whole_nodes(&c, 1, 2).is_err()); // misaligned
        assert!(DeviceMesh::whole_nodes(&c, 0, 3).is_err()); // not pow2
        assert!(DeviceMesh::whole_nodes(&c, 4, 1).is_err()); // OOB
    }

    #[test]
    fn enumerate_counts_for_one_node() {
        // One node of 8: sub-node widths 1(8 slices), 2(4), 4(2) = 14, plus
        // the whole node = 15.
        let c = ClusterSpec::h100(1);
        assert_eq!(DeviceMesh::enumerate(&c).len(), 15);
    }

    #[test]
    fn enumerate_counts_for_two_nodes() {
        // Two nodes: 14 sub-node each = 28, whole-node spans: (0,1),(1,1),(0,2) = 3.
        let c = cluster2();
        assert_eq!(DeviceMesh::enumerate(&c).len(), 31);
    }

    #[test]
    fn gpu_at_maps_node_major() {
        let c = cluster2();
        let m = DeviceMesh::whole_nodes(&c, 0, 2).unwrap();
        assert_eq!(m.gpu_at(0), GpuId(0));
        assert_eq!(m.gpu_at(7), GpuId(7));
        assert_eq!(m.gpu_at(8), GpuId(8));
        assert_eq!(m.gpu_at(15), GpuId(15));

        let s = DeviceMesh::sub_node(&c, 1, 4, 4).unwrap();
        assert_eq!(s.gpu_at(0), GpuId(12));
        assert_eq!(s.gpu_at(3), GpuId(15));
    }

    #[test]
    fn contains_and_overlap() {
        let c = cluster2();
        let left = DeviceMesh::sub_node(&c, 0, 0, 4).unwrap();
        let right = DeviceMesh::sub_node(&c, 0, 4, 4).unwrap();
        let full = DeviceMesh::full(&c);
        assert!(!left.overlaps(&right));
        assert!(left.overlaps(&full));
        assert!(right.overlaps(&full));
        assert!(left.contains(GpuId(3)));
        assert!(!left.contains(GpuId(4)));
        assert!(!left.contains(GpuId(8)));
    }

    #[test]
    fn contains_mesh_matches_gpu_set_containment() {
        let c = cluster2();
        let meshes = DeviceMesh::enumerate(&c);
        for a in &meshes {
            for b in &meshes {
                let set = b.gpus().all(|g| a.contains(g));
                assert_eq!(a.contains_mesh(b), set, "{a} contains {b}");
            }
        }
    }

    #[test]
    fn overlap_requires_same_node_and_slice() {
        let c = cluster2();
        let a = DeviceMesh::sub_node(&c, 0, 0, 2).unwrap();
        let b = DeviceMesh::sub_node(&c, 1, 0, 2).unwrap();
        assert!(!a.overlaps(&b));
        let n1 = DeviceMesh::whole_nodes(&c, 1, 1).unwrap();
        assert!(b.overlaps(&n1));
        assert!(!a.overlaps(&n1));
    }

    #[test]
    fn display_forms() {
        let c = cluster2();
        assert_eq!(
            DeviceMesh::sub_node(&c, 0, 4, 2).unwrap().to_string(),
            "node0[gpu4-5]"
        );
        assert_eq!(
            DeviceMesh::whole_nodes(&c, 1, 1).unwrap().to_string(),
            "node1"
        );
        assert_eq!(DeviceMesh::full(&c).to_string(), "node[0-1]");
    }

    #[test]
    fn consecutive_group_within_node() {
        let c = cluster2();
        let full = DeviceMesh::full(&c);
        assert!(full.consecutive_group_within_node(8));
        assert!(!full.consecutive_group_within_node(16));
        let slice = DeviceMesh::sub_node(&c, 0, 0, 4).unwrap();
        assert!(slice.consecutive_group_within_node(4));
        assert!(!slice.consecutive_group_within_node(8));
    }

    #[test]
    #[should_panic(expected = "out of mesh")]
    fn gpu_at_out_of_range_panics() {
        let c = cluster2();
        DeviceMesh::sub_node(&c, 0, 0, 2).unwrap().gpu_at(2);
    }

    proptest! {
        #[test]
        fn enumerated_meshes_tile_consistently(n_nodes_pow in 0u32..4) {
            let c = ClusterSpec::h100(1 << n_nodes_pow);
            for m in DeviceMesh::enumerate(&c) {
                // Every mesh's GPUs are inside the cluster and contained.
                for g in m.gpus() {
                    prop_assert!(g.0 < c.total_gpus());
                    prop_assert!(m.contains(g));
                }
                // Rank count matches the iterator length.
                prop_assert_eq!(m.gpus().count() as u32, m.n_gpus());
            }
        }

        #[test]
        fn enumerate_count_matches_enumeration(n_nodes_pow in 0u32..5) {
            let c = ClusterSpec::h100(1 << n_nodes_pow);
            prop_assert_eq!(DeviceMesh::enumerate(&c).len(), DeviceMesh::enumerate_count(&c));
        }

        #[test]
        fn enumerate_within_matches_filtered_enumeration(n_nodes_pow in 0u32..4) {
            let c = ClusterSpec::h100(1 << n_nodes_pow);
            let all = DeviceMesh::enumerate(&c);
            // Every enumerable mesh is a valid region; the direct walk must
            // reproduce the filtered list exactly, order included.
            for region in &all {
                let filtered: Vec<_> = all
                    .iter()
                    .copied()
                    .filter(|m| region.contains_mesh(m))
                    .collect();
                prop_assert_eq!(DeviceMesh::enumerate_within(&c, region), filtered);
            }
        }

        #[test]
        fn overlap_agrees_with_gpu_set_intersection(seed in 0u64..500) {
            let c = ClusterSpec::h100(4);
            let meshes = DeviceMesh::enumerate(&c);
            let i = (seed as usize * 7919) % meshes.len();
            let j = (seed as usize * 104729) % meshes.len();
            let (a, b) = (meshes[i], meshes[j]);
            let set_overlap = a.gpus().any(|g| b.contains(g));
            prop_assert_eq!(a.overlaps(&b), set_overlap);
            prop_assert_eq!(b.overlaps(&a), set_overlap);
        }
    }
}
