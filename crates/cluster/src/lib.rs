//! Cluster and hardware substrate for `real-rs`.
//!
//! The paper evaluates ReaL on a 128×H100 cluster; this crate is the
//! simulated stand-in. It provides:
//!
//! - [`GpuSpec`] — an analytic device model (peak FLOP/s, HBM bandwidth,
//!   memory capacity, kernel-launch overhead),
//! - [`ClusterSpec`] — node/GPU topology plus intra-node (NVLink) and
//!   inter-node (RoCE) link parameters,
//! - [`DeviceMesh`] — the paper's §4 device-mesh abstraction, including the
//!   enumeration rules (single-node power-of-two slices aligned to their
//!   size, or whole-node spans) and overlap tests used by both the runtime
//!   estimator (Algorithm 1) and the runtime engine,
//! - [`comm`] — α–β cost models for the NCCL-style collectives ReaL issues
//!   (ring all-reduce/all-gather/reduce-scatter, tree broadcast, P2P),
//! - [`ClusterHealth`] — live per-GPU liveness/slowdown state that derives
//!   the *surviving* mesh set for mid-run re-planning,
//! - [`partition`] — allocation-restricted mesh enumeration and disjoint
//!   mesh-split enumeration for the multi-tenant scheduler.
//!
//! # Examples
//!
//! ```
//! use real_cluster::{ClusterSpec, DeviceMesh};
//! let cluster = ClusterSpec::h100(2); // 2 nodes x 8 GPUs
//! let meshes = DeviceMesh::enumerate(&cluster);
//! assert!(meshes.iter().any(|m| m.n_gpus() == 16)); // the full cluster
//! assert!(meshes.iter().any(|m| m.n_gpus() == 1));  // a single GPU
//! ```

pub mod comm;
pub mod gpu;
pub mod health;
pub mod mesh;
pub mod partition;
pub mod spec;

pub use comm::CommModel;
pub use gpu::GpuSpec;
pub use health::{ClusterHealth, GpuHealth};
pub use mesh::{DeviceMesh, GpuId};
pub use spec::ClusterSpec;
