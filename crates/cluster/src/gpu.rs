//! Analytic GPU device model.

use real_util::units::{GB, GIB, TFLOPS};
use serde::{Deserialize, Serialize};

/// An analytic model of a single accelerator.
///
/// These five quantities are all the per-device information the ReaL cost
/// model needs: compute-bound kernels are charged `flops / (peak · eff)`,
/// memory-bound kernels (auto-regressive decoding, KV-cache reads) are
/// charged `bytes / hbm_bw`, and each kernel invocation pays
/// `launch_overhead` unless CUDA-graph capture is enabled (Table 6 of the
/// paper measures exactly this toggle).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"H100"`.
    pub name: String,
    /// Peak dense BF16 throughput in FLOP/s.
    pub peak_flops_bf16: f64,
    /// Achievable fraction of peak for large GEMMs (model-level efficiency).
    pub gemm_efficiency: f64,
    /// HBM bandwidth in bytes/s.
    pub hbm_bw: f64,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Per-kernel launch overhead in seconds (eliminated by CUDA graphs).
    pub launch_overhead: f64,
}

impl GpuSpec {
    /// An NVIDIA H100 SXM-like device (the paper's testbed GPU).
    pub fn h100() -> Self {
        Self {
            name: "H100".to_string(),
            peak_flops_bf16: 989.0 * TFLOPS,
            gemm_efficiency: 0.55,
            hbm_bw: 3.35 * 1e12,
            mem_capacity: 80 * GIB,
            launch_overhead: 6.0e-6,
        }
    }

    /// An NVIDIA A100 SXM-like device, useful for what-if experiments.
    pub fn a100() -> Self {
        Self {
            name: "A100".to_string(),
            peak_flops_bf16: 312.0 * TFLOPS,
            gemm_efficiency: 0.5,
            hbm_bw: 2.0 * 1e12,
            mem_capacity: 80 * GIB,
            launch_overhead: 8.0e-6,
        }
    }

    /// Effective sustained GEMM throughput in FLOP/s.
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops_bf16 * self.gemm_efficiency
    }

    /// Time to execute `flops` of dense compute on this device.
    pub fn compute_time(&self, flops: f64) -> f64 {
        debug_assert!(flops >= 0.0);
        flops / self.effective_flops()
    }

    /// Time to stream `bytes` through HBM.
    pub fn mem_io_time(&self, bytes: f64) -> f64 {
        debug_assert!(bytes >= 0.0);
        bytes / self.hbm_bw
    }

    /// Roofline kernel time: the max of the compute and memory-IO components
    /// plus the launch overhead (zero when `cuda_graph` is set).
    pub fn kernel_time(&self, flops: f64, bytes: f64, cuda_graph: bool) -> f64 {
        let overhead = if cuda_graph {
            0.0
        } else {
            self.launch_overhead
        };
        self.compute_time(flops).max(self.mem_io_time(bytes)) + overhead
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::h100()
    }
}

/// Sanity floor for bandwidth/time parameters: `assert!`s a spec is usable.
///
/// # Errors
///
/// Returns a message describing the first invalid field.
pub fn validate(spec: &GpuSpec) -> Result<(), String> {
    if spec.peak_flops_bf16 <= 0.0 {
        return Err(format!(
            "peak_flops_bf16 must be positive, got {}",
            spec.peak_flops_bf16
        ));
    }
    if !(0.0..=1.0).contains(&spec.gemm_efficiency) || spec.gemm_efficiency == 0.0 {
        return Err(format!(
            "gemm_efficiency must be in (0, 1], got {}",
            spec.gemm_efficiency
        ));
    }
    if spec.hbm_bw <= 0.0 {
        return Err(format!("hbm_bw must be positive, got {}", spec.hbm_bw));
    }
    if spec.mem_capacity < GB as u64 {
        return Err(format!(
            "mem_capacity suspiciously small: {}",
            spec.mem_capacity
        ));
    }
    if spec.launch_overhead < 0.0 {
        return Err(format!(
            "launch_overhead must be non-negative, got {}",
            spec.launch_overhead
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_spec_is_valid() {
        validate(&GpuSpec::h100()).unwrap();
        validate(&GpuSpec::a100()).unwrap();
    }

    #[test]
    fn compute_time_scales_linearly() {
        let gpu = GpuSpec::h100();
        let t1 = gpu.compute_time(1e12);
        let t2 = gpu.compute_time(2e12);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_time_is_roofline() {
        let gpu = GpuSpec::h100();
        // Memory-bound kernel: tiny flops, large bytes.
        let t = gpu.kernel_time(1.0, 3.35e12, true);
        assert!((t - 1.0).abs() < 1e-6);
        // Compute-bound kernel: huge flops, tiny bytes.
        let t = gpu.kernel_time(gpu.effective_flops(), 1.0, true);
        assert!((t - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cuda_graph_removes_launch_overhead() {
        let gpu = GpuSpec::h100();
        let with = gpu.kernel_time(0.0, 0.0, false);
        let without = gpu.kernel_time(0.0, 0.0, true);
        assert!((with - gpu.launch_overhead).abs() < 1e-12);
        assert_eq!(without, 0.0);
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut g = GpuSpec::h100();
        g.gemm_efficiency = 0.0;
        assert!(validate(&g).is_err());
        let mut g = GpuSpec::h100();
        g.hbm_bw = -1.0;
        assert!(validate(&g).is_err());
        let mut g = GpuSpec::h100();
        g.launch_overhead = -1e-6;
        assert!(validate(&g).is_err());
    }

    #[test]
    fn h100_decode_step_magnitude() {
        // A 7B model in bf16 is ~14 GiB of weights; one memory-bound decode
        // step on a single H100 should take roughly 4-5 ms.
        let gpu = GpuSpec::h100();
        let t = gpu.mem_io_time(14.0 * 1024.0 * 1024.0 * 1024.0);
        assert!(t > 3e-3 && t < 6e-3, "decode step estimate {t}");
    }
}
