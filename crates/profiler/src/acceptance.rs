//! Calibrated acceptance-rate fixtures for speculative decoding.
//!
//! Real systems measure draft/target acceptance rates empirically per task;
//! this reproduction ships deterministic calibrated curves in the profiler
//! grid instead, parameterized by the (draft, target) architecture pairing
//! and the generation task. The fixture models two well-known effects:
//!
//! - **capacity ratio** — a draft closer in size to its target agrees more
//!   often (diminishing returns past ~1/4 of the target's parameters),
//! - **positional decay** — later draft positions condition on earlier
//!   *draft* tokens, so the conditional acceptance rate decays with depth.
//!
//! The curves are fixtures, not truth: the `spec_decode` ablation sweeps
//! the base rate explicitly, and operators can override the curve on the
//! command line (`--acceptance`).

use real_model::{AcceptanceCurve, ModelSpec};

/// Generation task families with distinct draft/target agreement behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecTask {
    /// RLHF rollout generation (the default): moderately open-ended.
    RlhfRollout,
    /// Greedy/low-temperature completion: drafts agree most often.
    Greedy,
    /// High-temperature open-ended sampling: drafts agree least often.
    OpenEnded,
}

impl SpecTask {
    /// Parses the CLI spelling (`"rollout"`, `"greedy"`, `"open-ended"`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "rollout" | "rlhf" => Some(Self::RlhfRollout),
            "greedy" => Some(Self::Greedy),
            "open-ended" | "open" => Some(Self::OpenEnded),
            _ => None,
        }
    }

    /// Multiplier applied to the pairing's base acceptance rate.
    fn factor(self) -> f64 {
        match self {
            SpecTask::RlhfRollout => 1.0,
            SpecTask::Greedy => 1.08,
            SpecTask::OpenEnded => 0.85,
        }
    }
}

/// The calibrated per-position acceptance curve for a (draft, target, task)
/// triple. Deterministic in its inputs; all rates lie in `[0.05, 0.98]`.
pub fn calibrated_acceptance(
    draft: &ModelSpec,
    target: &ModelSpec,
    task: SpecTask,
) -> AcceptanceCurve {
    let ratio =
        draft.param_count_no_output_embed() as f64 / target.param_count_no_output_embed() as f64;
    // Saturating capacity curve: a 1B draft on a 13B target (~1/12) lands
    // near 0.78; a 7B draft on a 70B target (~1/9) near 0.80; same-size
    // pairs approach 0.95.
    let base = (0.95 * (1.0 - (-18.0 * ratio.min(1.0)).exp())).max(0.30) * task.factor();
    // Conditional acceptance decays ~3% per draft position.
    let rates: Vec<f64> = (0..8)
        .map(|i| (base * 0.97f64.powi(i)).clamp(0.05, 0.98))
        .collect();
    AcceptanceCurve::PerPosition(rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_valid_curves() {
        for (d, t) in [("1b", "7b"), ("1b", "13b"), ("7b", "70b"), ("13b", "70b")] {
            for task in [SpecTask::RlhfRollout, SpecTask::Greedy, SpecTask::OpenEnded] {
                let c = calibrated_acceptance(
                    &ModelSpec::by_size(d).unwrap(),
                    &ModelSpec::by_size(t).unwrap(),
                    task,
                );
                c.validate().unwrap();
            }
        }
    }

    #[test]
    fn closer_draft_accepts_more() {
        let target = ModelSpec::llama3_70b();
        let small = calibrated_acceptance(&ModelSpec::llama3_1b(), &target, SpecTask::RlhfRollout);
        let big = calibrated_acceptance(&ModelSpec::llama3_13b(), &target, SpecTask::RlhfRollout);
        assert!(big.rate_at(0) > small.rate_at(0));
    }

    #[test]
    fn rates_decay_with_position() {
        let c = calibrated_acceptance(
            &ModelSpec::llama3_7b(),
            &ModelSpec::llama3_70b(),
            SpecTask::RlhfRollout,
        );
        assert!(c.rate_at(0) > c.rate_at(7));
    }

    #[test]
    fn greedy_beats_open_ended() {
        let (d, t) = (ModelSpec::llama3_1b(), ModelSpec::llama3_13b());
        let g = calibrated_acceptance(&d, &t, SpecTask::Greedy);
        let o = calibrated_acceptance(&d, &t, SpecTask::OpenEnded);
        assert!(g.rate_at(0) > o.rate_at(0));
    }

    #[test]
    fn reference_pairings_land_in_useful_band() {
        // The two ablation pairings must land where speculation is
        // interesting (high enough to win, not saturated).
        for (d, t) in [("7b", "70b"), ("1b", "13b")] {
            let c = calibrated_acceptance(
                &ModelSpec::by_size(d).unwrap(),
                &ModelSpec::by_size(t).unwrap(),
                SpecTask::RlhfRollout,
            );
            let r = c.rate_at(0);
            assert!((0.7..=0.9).contains(&r), "{d}/{t} base rate {r}");
        }
    }

    #[test]
    fn task_parsing() {
        assert_eq!(SpecTask::by_name("greedy"), Some(SpecTask::Greedy));
        assert_eq!(SpecTask::by_name("ROLLOUT"), Some(SpecTask::RlhfRollout));
        assert!(SpecTask::by_name("other").is_none());
    }
}
