//! The profiler: microbenchmarks the (simulated) hardware and builds a
//! [`ProfileDb`].

use crate::db::{OpKind, ProfileDb, ProfileKey, ProfileTable};
use real_cluster::ClusterSpec;
use real_model::{CostModel, ModelSpec};
use real_util::stats::median;
use real_util::DeterministicRng;
use serde::{Deserialize, Serialize};

/// Profiling configuration: which grid points to sample and how noisily the
/// "hardware" reports them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileConfig {
    /// Sequence-length buckets for prefill/training tables.
    pub seq_buckets: Vec<u64>,
    /// Context-length buckets for decode tables.
    pub past_buckets: Vec<u64>,
    /// Smallest token count profiled (powers of two up to `max_tokens`).
    pub min_tokens: u64,
    /// Largest token count profiled.
    pub max_tokens: u64,
    /// Largest decode batch profiled (powers of two from 1).
    pub max_batch: u64,
    /// TP degrees to profile (filtered by the model's `max_tp`).
    pub tp_degrees: Vec<u32>,
    /// Trials per grid point (median taken).
    pub trials: u32,
    /// Multiplicative log-normal noise sigma on each measurement.
    pub noise_sigma: f64,
    /// Fixed per-trial overhead in seconds (synchronization, allocator),
    /// charged to the simulated profiling budget.
    pub per_trial_overhead: f64,
}

impl ProfileConfig {
    /// The paper's grid (Fig. 12 left): batch sizes 1–512, sequence lengths
    /// 256/512/1024 plus the long-context buckets, powers of two only.
    pub fn paper() -> Self {
        Self {
            seq_buckets: vec![256, 512, 1024, 2048, 4096, 8192],
            past_buckets: vec![256, 512, 1024, 2048, 4096, 8192],
            min_tokens: 256,
            max_tokens: 1 << 18,
            max_batch: 512,
            tp_degrees: vec![1, 2, 4, 8],
            trials: 2,
            noise_sigma: 0.03,
            per_trial_overhead: 20e-3,
        }
    }

    /// A reduced grid for fast unit tests.
    pub fn quick() -> Self {
        Self {
            seq_buckets: vec![256, 1024],
            past_buckets: vec![512],
            min_tokens: 256,
            max_tokens: 4096,
            max_batch: 16,
            tp_degrees: vec![1, 2],
            trials: 1,
            noise_sigma: 0.0,
            per_trial_overhead: 1e-3,
        }
    }

    fn pow2_grid(min: u64, max: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut v = min.max(1).next_power_of_two();
        while v <= max {
            out.push(v);
            v *= 2;
        }
        out
    }
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Profiles models against a cluster's simulated hardware.
#[derive(Debug, Clone)]
pub struct Profiler {
    cluster: ClusterSpec,
    config: ProfileConfig,
    rng: DeterministicRng,
}

impl Profiler {
    /// Creates a profiler for `cluster` with measurement `config` and RNG
    /// `seed`.
    pub fn new(cluster: ClusterSpec, config: ProfileConfig, seed: u64) -> Self {
        Self {
            cluster,
            config,
            rng: DeterministicRng::from_seed(seed).derive("profiler"),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ProfileConfig {
        &self.config
    }

    /// Profiles `model`, producing interpolation tables over the
    /// power-of-two grid plus measured link parameters, and accounting the
    /// simulated time the run would take. Statistics are reusable across
    /// experiments with the same model family (§8.2 "Profiler").
    pub fn profile(&mut self, model: &ModelSpec) -> ProfileDb {
        let cost = CostModel::new(self.cluster.clone(), model.clone());
        let tps: Vec<u32> = self
            .config
            .tp_degrees
            .iter()
            .copied()
            .filter(|&tp| u64::from(tp) <= model.max_tp() && tp <= self.cluster.gpus_per_node)
            .collect();
        let token_grid = ProfileConfig::pow2_grid(self.config.min_tokens, self.config.max_tokens);
        let batch_grid = ProfileConfig::pow2_grid(1, self.config.max_batch);

        let mut budget = 0.0f64;
        let mut samples = 0u64;
        let mut entries: Vec<(ProfileKey, ProfileTable)> = Vec::new();
        let measure = |true_secs: f64,
                       rng: &mut DeterministicRng,
                       budget: &mut f64,
                       samples: &mut u64,
                       trials: u32,
                       sigma: f64,
                       overhead: f64| {
            let mut obs = Vec::with_capacity(trials as usize);
            for _ in 0..trials {
                let t = true_secs * rng.lognormal_factor(sigma);
                obs.push(t);
                *budget += t + overhead;
                *samples += 1;
            }
            median(&obs).expect("trials >= 1")
        };

        let trials = self.config.trials.max(1);
        let sigma = self.config.noise_sigma;
        let overhead = self.config.per_trial_overhead;

        for &tp in &tps {
            // Prefill/training layer tables, per sequence bucket.
            for &seq in &self.config.seq_buckets {
                let mut fwd = Vec::new();
                let mut bwd = Vec::new();
                for &tokens in &token_grid {
                    let f = measure(
                        cost.layer_fwd_time(tokens, seq / 2, tp, true),
                        &mut self.rng,
                        &mut budget,
                        &mut samples,
                        trials,
                        sigma,
                        overhead,
                    );
                    let b = measure(
                        cost.layer_bwd_time(tokens, seq / 2, tp),
                        &mut self.rng,
                        &mut budget,
                        &mut samples,
                        trials,
                        sigma,
                        overhead,
                    );
                    fwd.push((tokens as f64, f));
                    bwd.push((tokens as f64, b));
                }
                entries.push((
                    ProfileKey {
                        op: OpKind::LayerFwd { seq_bucket: seq },
                        tp,
                    },
                    ProfileTable::new(fwd),
                ));
                entries.push((
                    ProfileKey {
                        op: OpKind::LayerBwd { seq_bucket: seq },
                        tp,
                    },
                    ProfileTable::new(bwd),
                ));
            }
            // Decode tables, per context bucket.
            for &past in &self.config.past_buckets {
                let mut dec = Vec::new();
                for &batch in &batch_grid {
                    let d = measure(
                        cost.layer_decode_time(batch, past, tp, true),
                        &mut self.rng,
                        &mut budget,
                        &mut samples,
                        trials,
                        sigma,
                        overhead,
                    );
                    dec.push((batch as f64, d));
                }
                entries.push((
                    ProfileKey {
                        op: OpKind::LayerDecode { past_bucket: past },
                        tp,
                    },
                    ProfileTable::new(dec),
                ));
            }
            // Embedding and head tables.
            let mut embed = Vec::new();
            let mut head_f = Vec::new();
            let mut head_b = Vec::new();
            for &tokens in &token_grid {
                embed.push((
                    tokens as f64,
                    measure(
                        cost.embed_time(tokens, tp),
                        &mut self.rng,
                        &mut budget,
                        &mut samples,
                        trials,
                        sigma,
                        overhead,
                    ),
                ));
                head_f.push((
                    tokens as f64,
                    measure(
                        cost.head_time(tokens, tp, false),
                        &mut self.rng,
                        &mut budget,
                        &mut samples,
                        trials,
                        sigma,
                        overhead,
                    ),
                ));
                head_b.push((
                    tokens as f64,
                    measure(
                        cost.head_time(tokens, tp, true),
                        &mut self.rng,
                        &mut budget,
                        &mut samples,
                        trials,
                        sigma,
                        overhead,
                    ),
                ));
            }
            entries.push((
                ProfileKey {
                    op: OpKind::EmbedFwd,
                    tp,
                },
                ProfileTable::new(embed),
            ));
            entries.push((
                ProfileKey {
                    op: OpKind::HeadFwd,
                    tp,
                },
                ProfileTable::new(head_f),
            ));
            entries.push((
                ProfileKey {
                    op: OpKind::HeadBwd,
                    tp,
                },
                ProfileTable::new(head_b),
            ));
        }

        // Optimizer table (independent of TP: x-axis is the local shard).
        let mut optim = Vec::new();
        let shard_grid = ProfileConfig::pow2_grid(1 << 20, model.param_count().next_power_of_two());
        for &shard in &shard_grid {
            optim.push((
                shard as f64,
                measure(
                    cost.optim_step_time(shard),
                    &mut self.rng,
                    &mut budget,
                    &mut samples,
                    trials,
                    sigma,
                    overhead,
                ),
            ));
        }
        entries.push((
            ProfileKey {
                op: OpKind::OptimStep,
                tp: 1,
            },
            ProfileTable::new(optim),
        ));

        // Link measurements: a handful of large transfers each.
        let bw_intra = self.cluster.intra_node_bw * self.rng.lognormal_factor(sigma);
        let bw_inter = self.cluster.inter_node_bw * self.rng.lognormal_factor(sigma);
        let lat_intra = self.cluster.intra_node_latency * self.rng.lognormal_factor(sigma);
        let lat_inter = self.cluster.inter_node_latency * self.rng.lognormal_factor(sigma);
        budget += 8.0; // bandwidth sweep allowance
        samples += 8;

        ProfileDb::new(
            model.name.clone(),
            entries,
            bw_intra,
            bw_inter,
            lat_intra,
            lat_inter,
            budget,
            samples,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_7b(cfg: ProfileConfig) -> ProfileDb {
        let mut p = Profiler::new(ClusterSpec::h100(2), cfg, 42);
        p.profile(&ModelSpec::llama3_7b())
    }

    #[test]
    fn quick_profile_produces_tables() {
        let db = profile_7b(ProfileConfig::quick());
        // tp {1,2} x (2 seq x 2 ops + 1 decode + 3 embed/head) + 1 optim.
        assert_eq!(db.n_tables(), 2 * (2 * 2 + 1 + 3) + 1);
        assert!(db.n_samples() > 0);
        assert_eq!(db.seq_buckets(), vec![256, 1024]);
        assert_eq!(db.past_buckets(), vec![512]);
    }

    #[test]
    fn noiseless_profile_matches_cost_model_on_grid() {
        let db = profile_7b(ProfileConfig::quick());
        let cost = CostModel::new(ClusterSpec::h100(2), ModelSpec::llama3_7b());
        let key = ProfileKey {
            op: OpKind::LayerFwd { seq_bucket: 1024 },
            tp: 2,
        };
        let got = db.lookup(key, 1024.0).unwrap();
        let want = cost.layer_fwd_time(1024, 512, 2, true);
        assert!((got - want).abs() / want < 1e-9, "got {got} want {want}");
    }

    #[test]
    fn noisy_profile_is_close_but_not_exact() {
        let mut cfg = ProfileConfig::quick();
        cfg.noise_sigma = 0.05;
        cfg.trials = 3;
        let db = profile_7b(cfg);
        let cost = CostModel::new(ClusterSpec::h100(2), ModelSpec::llama3_7b());
        let key = ProfileKey {
            op: OpKind::LayerFwd { seq_bucket: 1024 },
            tp: 1,
        };
        let got = db.lookup(key, 2048.0).unwrap();
        let want = cost.layer_fwd_time(2048, 512, 1, true);
        let rel = (got - want).abs() / want;
        assert!(rel < 0.25, "relative error {rel}");
        assert!(rel > 0.0, "noisy measurement should not be exact");
    }

    #[test]
    fn profiling_budget_under_paper_limit() {
        // The paper: a full model profile takes < 4 minutes.
        let db = profile_7b(ProfileConfig::paper());
        assert!(
            db.profiling_secs() < 240.0,
            "budget {}",
            db.profiling_secs()
        );
        assert!(db.profiling_secs() > 10.0, "budget suspiciously small");
    }

    #[test]
    fn tp_degrees_filtered_by_model_and_node() {
        // 7B allows tp up to 8; ask for 16 and it must be dropped.
        let mut cfg = ProfileConfig::quick();
        cfg.tp_degrees = vec![1, 16];
        let db = profile_7b(cfg);
        let missing = ProfileKey {
            op: OpKind::EmbedFwd,
            tp: 16,
        };
        assert!(db.table(missing).is_none());
        assert!(db
            .table(ProfileKey {
                op: OpKind::EmbedFwd,
                tp: 1
            })
            .is_some());
    }

    #[test]
    fn determinism_same_seed_same_db() {
        let a = Profiler::new(ClusterSpec::h100(1), ProfileConfig::quick(), 7)
            .profile(&ModelSpec::llama3_7b());
        let b = Profiler::new(ClusterSpec::h100(1), ProfileConfig::quick(), 7)
            .profile(&ModelSpec::llama3_7b());
        assert_eq!(a, b);
    }

    #[test]
    fn decode_table_monotone_in_context() {
        let mut cfg = ProfileConfig::quick();
        cfg.past_buckets = vec![256, 4096];
        let db = profile_7b(cfg);
        let short = db
            .lookup(
                ProfileKey {
                    op: OpKind::LayerDecode { past_bucket: 256 },
                    tp: 1,
                },
                16.0,
            )
            .unwrap();
        let long = db
            .lookup(
                ProfileKey {
                    op: OpKind::LayerDecode { past_bucket: 4096 },
                    tp: 1,
                },
                16.0,
            )
            .unwrap();
        assert!(long > short);
    }
}
