//! Simulated profiling (§5.1 of the paper).
//!
//! ReaL's estimator is *profiling-assisted*: before searching, the system
//! spends a few minutes timing individual transformer layers at
//! power-of-two input sizes, plus the cluster's intra-/inter-node link
//! parameters. Estimates for other sizes are linearly interpolated.
//!
//! In this reproduction the "hardware" is the analytic
//! [`real_model::CostModel`]; the profiler times it *with multiplicative
//! measurement noise*, records only the power-of-two grid, and accounts the
//! simulated wall-clock the microbenchmarks would have consumed (Fig. 12
//! left). The estimator therefore works from genuinely degraded
//! information, which is what produces realistic estimator-vs-runtime error
//! in Fig. 12 (right).
//!
//! # Examples
//!
//! ```
//! use real_profiler::{ProfileConfig, Profiler};
//! use real_cluster::ClusterSpec;
//! use real_model::ModelSpec;
//! let cluster = ClusterSpec::h100(1);
//! let mut profiler = Profiler::new(cluster, ProfileConfig::quick(), 1);
//! let db = profiler.profile(&ModelSpec::llama3_7b());
//! assert!(db.profiling_secs() > 0.0);
//! ```

pub mod acceptance;
pub mod db;
pub mod profile;

pub use acceptance::{calibrated_acceptance, SpecTask};
pub use db::{OpKind, ProfileDb, ProfileKey, ProfileTable};
pub use profile::{ProfileConfig, Profiler};
