//! The profile database: interpolation tables of per-layer operation times
//! keyed by operation kind and TP degree, plus measured link parameters.

use real_cluster::CommModel;
use real_util::stats::lerp_knots;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The operations ReaL profiles per layer (§5.1). Sequence-length-dependent
/// operations carry their bucket so attention costs interpolate correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// One layer's forward pass; x-axis = tokens.
    LayerFwd {
        /// Sequence-length bucket the samples were taken at.
        seq_bucket: u64,
    },
    /// One layer's backward pass; x-axis = tokens.
    LayerBwd {
        /// Sequence-length bucket the samples were taken at.
        seq_bucket: u64,
    },
    /// One layer's single decode step; x-axis = batch size.
    LayerDecode {
        /// Context-length bucket the samples were taken at.
        past_bucket: u64,
    },
    /// Input embedding forward; x-axis = tokens.
    EmbedFwd,
    /// Output head forward; x-axis = tokens.
    HeadFwd,
    /// Output head forward+backward; x-axis = tokens.
    HeadBwd,
    /// Optimizer step; x-axis = parameters in the local shard.
    OptimStep,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::LayerFwd { seq_bucket } => write!(f, "layer_fwd@seq{seq_bucket}"),
            OpKind::LayerBwd { seq_bucket } => write!(f, "layer_bwd@seq{seq_bucket}"),
            OpKind::LayerDecode { past_bucket } => write!(f, "layer_decode@past{past_bucket}"),
            OpKind::EmbedFwd => write!(f, "embed_fwd"),
            OpKind::HeadFwd => write!(f, "head_fwd"),
            OpKind::HeadBwd => write!(f, "head_bwd"),
            OpKind::OptimStep => write!(f, "optim_step"),
        }
    }
}

/// Table key: operation kind at a TP degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProfileKey {
    /// The profiled operation.
    pub op: OpKind,
    /// Tensor-parallel degree the samples were taken at.
    pub tp: u32,
}

/// A power-of-two interpolation table: `(x, seconds)` knots with strictly
/// increasing x.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileTable {
    knots: Vec<(f64, f64)>,
}

impl ProfileTable {
    /// Builds a table from knots.
    ///
    /// # Panics
    ///
    /// Panics if `knots` is empty or x is not strictly increasing.
    pub fn new(knots: Vec<(f64, f64)>) -> Self {
        assert!(
            !knots.is_empty(),
            "profile table must have at least one knot"
        );
        for w in knots.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "profile knots must be strictly increasing in x"
            );
        }
        Self { knots }
    }

    /// Interpolated (or extrapolated) seconds at `x`, clamped to be
    /// non-negative.
    pub fn interpolate(&self, x: f64) -> f64 {
        lerp_knots(&self.knots, x).max(0.0)
    }

    /// The raw knots.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }
}

/// Profiled statistics for one model architecture on one cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileDb {
    model_name: String,
    entries: Vec<(ProfileKey, ProfileTable)>,
    /// Measured link parameters (noisy observations of the true links).
    measured_bw_intra: f64,
    measured_bw_inter: f64,
    measured_lat_intra: f64,
    measured_lat_inter: f64,
    /// Simulated seconds the profiling run would have taken (Fig. 12 left).
    profiling_secs: f64,
    /// Number of microbenchmark samples taken.
    n_samples: u64,
}

impl ProfileDb {
    /// Assembles a database. Used by [`crate::Profiler`]; exposed for tests
    /// and serialization round-trips.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        model_name: String,
        entries: Vec<(ProfileKey, ProfileTable)>,
        measured_bw_intra: f64,
        measured_bw_inter: f64,
        measured_lat_intra: f64,
        measured_lat_inter: f64,
        profiling_secs: f64,
        n_samples: u64,
    ) -> Self {
        Self {
            model_name,
            entries,
            measured_bw_intra,
            measured_bw_inter,
            measured_lat_intra,
            measured_lat_inter,
            profiling_secs,
            n_samples,
        }
    }

    /// Name of the profiled model.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Number of interpolation tables.
    pub fn n_tables(&self) -> usize {
        self.entries.len()
    }

    /// Number of microbenchmark samples taken.
    pub fn n_samples(&self) -> u64 {
        self.n_samples
    }

    /// Simulated profiling duration in seconds (Fig. 12 left).
    pub fn profiling_secs(&self) -> f64 {
        self.profiling_secs
    }

    /// Looks up the table for `key`.
    pub fn table(&self, key: ProfileKey) -> Option<&ProfileTable> {
        self.entries.iter().find(|(k, _)| *k == key).map(|(_, t)| t)
    }

    /// Interpolated seconds for `key` at `x`. Falls back to the nearest
    /// profiled TP degree when the exact one is missing (the estimator then
    /// rescales by the TP ratio, mirroring how real profiles are reused).
    pub fn lookup(&self, key: ProfileKey, x: f64) -> Option<f64> {
        if let Some(t) = self.table(key) {
            return Some(t.interpolate(x));
        }
        // Nearest-TP fallback with linear work rescaling.
        let mut best: Option<(u32, &ProfileTable)> = None;
        for (k, t) in &self.entries {
            if k.op == key.op {
                match best {
                    Some((tp, _)) if tp.abs_diff(key.tp) <= k.tp.abs_diff(key.tp) => {}
                    _ => best = Some((k.tp, t)),
                }
            }
        }
        best.map(|(tp, t)| t.interpolate(x) * f64::from(tp) / f64::from(key.tp))
    }

    /// The nearest profiled bucket to `value` among `buckets` (log-distance).
    pub fn nearest_bucket(buckets: &[u64], value: u64) -> u64 {
        assert!(!buckets.is_empty(), "bucket list must not be empty");
        let v = (value.max(1)) as f64;
        *buckets
            .iter()
            .min_by(|&&a, &&b| {
                let da = (a as f64 / v).ln().abs();
                let db = (b as f64 / v).ln().abs();
                da.partial_cmp(&db).expect("bucket distances are finite")
            })
            .expect("bucket list is non-empty")
    }

    /// Sequence-length buckets present for an op family.
    pub fn seq_buckets(&self) -> Vec<u64> {
        let mut buckets: Vec<u64> = self
            .entries
            .iter()
            .filter_map(|(k, _)| match k.op {
                OpKind::LayerFwd { seq_bucket } => Some(seq_bucket),
                _ => None,
            })
            .collect();
        buckets.sort_unstable();
        buckets.dedup();
        buckets
    }

    /// Context-length buckets present for decode tables.
    pub fn past_buckets(&self) -> Vec<u64> {
        let mut buckets: Vec<u64> = self
            .entries
            .iter()
            .filter_map(|(k, _)| match k.op {
                OpKind::LayerDecode { past_bucket } => Some(past_bucket),
                _ => None,
            })
            .collect();
        buckets.sort_unstable();
        buckets.dedup();
        buckets
    }

    /// A communication model built from the *measured* link parameters.
    pub fn comm_model(&self) -> CommModel {
        CommModel::from_parameters(
            self.measured_bw_intra,
            self.measured_bw_inter,
            self.measured_lat_intra,
            self.measured_lat_inter,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(points: &[(f64, f64)]) -> ProfileTable {
        ProfileTable::new(points.to_vec())
    }

    fn db_with(entries: Vec<(ProfileKey, ProfileTable)>) -> ProfileDb {
        ProfileDb::new("m".into(), entries, 4.5e11, 5.0e10, 3e-6, 12e-6, 60.0, 100)
    }

    #[test]
    fn interpolation_between_knots() {
        let t = table(&[(256.0, 1.0), (512.0, 2.0)]);
        assert_eq!(t.interpolate(384.0), 1.5);
    }

    #[test]
    fn extrapolation_clamped_non_negative() {
        // Steep slope: extrapolating to x=1 would be negative without the
        // clamp.
        let t = table(&[(256.0, 1.0), (512.0, 3.0)]);
        assert_eq!(t.interpolate(1.0), 0.0);
        // Mild slope stays positive and linear.
        let t = table(&[(256.0, 1.0), (512.0, 2.0)]);
        assert!(t.interpolate(1.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_knots_panic() {
        table(&[(2.0, 1.0), (1.0, 2.0)]);
    }

    #[test]
    fn lookup_exact_key() {
        let key = ProfileKey {
            op: OpKind::EmbedFwd,
            tp: 2,
        };
        let db = db_with(vec![(key, table(&[(1.0, 1.0), (2.0, 2.0)]))]);
        assert_eq!(db.lookup(key, 1.5), Some(1.5));
    }

    #[test]
    fn lookup_falls_back_to_nearest_tp_with_rescale() {
        let k2 = ProfileKey {
            op: OpKind::EmbedFwd,
            tp: 2,
        };
        let db = db_with(vec![(k2, table(&[(1.0, 4.0), (2.0, 4.0)]))]);
        // tp=4 missing: reuse tp=2 table scaled by 2/4.
        let got = db
            .lookup(
                ProfileKey {
                    op: OpKind::EmbedFwd,
                    tp: 4,
                },
                1.0,
            )
            .unwrap();
        assert!((got - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lookup_missing_op_is_none() {
        let db = db_with(vec![]);
        assert_eq!(
            db.lookup(
                ProfileKey {
                    op: OpKind::HeadFwd,
                    tp: 1
                },
                1.0
            ),
            None
        );
    }

    #[test]
    fn nearest_bucket_is_log_scale() {
        let buckets = [256, 1024, 4096];
        assert_eq!(ProfileDb::nearest_bucket(&buckets, 300), 256);
        // 512 is exactly between 256 and 1024 in log space; either is fine,
        // but 600 is closer to 1024 logarithmically than to 256.
        assert_eq!(ProfileDb::nearest_bucket(&buckets, 600), 1024);
        assert_eq!(ProfileDb::nearest_bucket(&buckets, 100_000), 4096);
        assert_eq!(ProfileDb::nearest_bucket(&buckets, 0), 256);
    }

    #[test]
    fn bucket_listing() {
        let db = db_with(vec![
            (
                ProfileKey {
                    op: OpKind::LayerFwd { seq_bucket: 512 },
                    tp: 1,
                },
                table(&[(1.0, 1.0)]),
            ),
            (
                ProfileKey {
                    op: OpKind::LayerFwd { seq_bucket: 256 },
                    tp: 2,
                },
                table(&[(1.0, 1.0)]),
            ),
            (
                ProfileKey {
                    op: OpKind::LayerDecode { past_bucket: 1024 },
                    tp: 1,
                },
                table(&[(1.0, 1.0)]),
            ),
        ]);
        assert_eq!(db.seq_buckets(), vec![256, 512]);
        assert_eq!(db.past_buckets(), vec![1024]);
    }

    #[test]
    fn comm_model_uses_measured_links() {
        let db = db_with(vec![]);
        let m = db.comm_model();
        // Intra-node p2p at measured 450 GB/s.
        let t = m.p2p(4.5e11, true);
        assert!((t - (3e-6 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn display_of_op_kinds() {
        assert_eq!(
            OpKind::LayerFwd { seq_bucket: 512 }.to_string(),
            "layer_fwd@seq512"
        );
        assert_eq!(OpKind::OptimStep.to_string(), "optim_step");
    }

    #[test]
    fn profile_db_round_trips_through_serde() {
        let key = ProfileKey {
            op: OpKind::LayerFwd { seq_bucket: 512 },
            tp: 4,
        };
        let db = db_with(vec![(key, table(&[(256.0, 1.5), (512.0, 3.0)]))]);
        let json = serde_json::to_string(&db).unwrap();
        let back: ProfileDb = serde_json::from_str(&json).unwrap();
        assert_eq!(back, db);
        assert_eq!(back.lookup(key, 384.0), Some(2.25));
    }
}
