//! Minimal dependency-free argument parsing for the `real` CLI.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: the subcommand plus `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    command: String,
    flags: HashMap<String, String>,
}

/// Errors from parsing or flag extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` with no value followed (and it is not a boolean flag).
    MissingValue(String),
    /// A positional argument appeared where a flag was expected.
    Unexpected(String),
    /// A flag value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending value.
        value: String,
        /// Expected type.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand; try `real help`"),
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::Unexpected(arg) => write!(f, "unexpected argument: {arg}"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag}: cannot parse {value:?} as {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &[
    "no-cuda-graph",
    "quick-profile",
    "json",
    "heuristic",
    "explain",
    "replan",
    "dry-run",
    "check",
    "no-memo",
    "memo-stats",
    "async-offpolicy",
    "admit-all",
    "no-preemption",
    "spec-decode",
    "no-spec",
];

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on a missing command, a flag without a value,
    /// or a stray positional argument.
    pub fn parse<I, S>(argv: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut it = argv.into_iter().map(Into::into).peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with('-') {
            return Err(ArgError::MissingCommand);
        }
        let mut flags = HashMap::new();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError::Unexpected(arg));
            };
            if BOOLEAN_FLAGS.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
                continue;
            }
            match it.next() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_string(), v);
                }
                _ => return Err(ArgError::MissingValue(name.to_string())),
            }
        }
        Ok(Self { command, flags })
    }

    /// The subcommand.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// A string flag with a default.
    pub fn str_or(&self, flag: &str, default: &str) -> String {
        self.flags
            .get(flag)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// An optional string flag.
    pub fn str_opt(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// A parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparsable.
    pub fn num_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// A boolean flag (present → true).
    pub fn flag(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// Overrides a flag value (used by commands that re-run the flag set
    /// with a substituted parameter, e.g. `advise` sweeping `--nodes`).
    pub fn set(&mut self, flag: &str, value: impl Into<String>) {
        self.flags.insert(flag.to_string(), value.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(["plan", "--nodes", "2", "--actor", "7b"]).unwrap();
        assert_eq!(a.command(), "plan");
        assert_eq!(a.num_or("nodes", 1u32).unwrap(), 2);
        assert_eq!(a.str_or("actor", "13b"), "7b");
        assert_eq!(a.str_or("critic", "7b"), "7b"); // default
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = Args::parse(["run", "--no-cuda-graph", "--iters", "3"]).unwrap();
        assert!(a.flag("no-cuda-graph"));
        assert_eq!(a.num_or("iters", 1u32).unwrap(), 3);
        assert!(!a.flag("json"));
    }

    #[test]
    fn missing_command_rejected() {
        assert_eq!(
            Args::parse(Vec::<String>::new()).unwrap_err(),
            ArgError::MissingCommand
        );
        assert_eq!(
            Args::parse(["--nodes"]).unwrap_err(),
            ArgError::MissingCommand
        );
    }

    #[test]
    fn missing_value_rejected() {
        let e = Args::parse(["plan", "--nodes"]).unwrap_err();
        assert_eq!(e, ArgError::MissingValue("nodes".into()));
        let e = Args::parse(["plan", "--nodes", "--actor", "7b"]).unwrap_err();
        assert_eq!(e, ArgError::MissingValue("nodes".into()));
    }

    #[test]
    fn positional_rejected() {
        let e = Args::parse(["plan", "oops"]).unwrap_err();
        assert_eq!(e, ArgError::Unexpected("oops".into()));
    }

    #[test]
    fn bad_numeric_value() {
        let a = Args::parse(["plan", "--nodes", "two"]).unwrap();
        assert!(matches!(
            a.num_or("nodes", 1u32),
            Err(ArgError::BadValue { .. })
        ));
    }
}
