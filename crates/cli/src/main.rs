//! `real` — the command-line interface of `real-rs`.
//!
//! ```sh
//! real plan --nodes 2 --actor 7b --batch 512 --out plan.json
//! real run  --nodes 2 --actor 7b --batch 512 --plan plan.json --iters 5
//! real baselines --nodes 2 --batch 512
//! real models
//! ```

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::dispatch(&args) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
