//! The `real` CLI subcommands: build experiments from flags, plan, run,
//! and compare.

use crate::args::{ArgError, Args};
use real_core::prelude::*;
use real_sched::{GraphSet, SchedConfig, SchedError, SchedSpec, Scheduler, TenantSpec};
use std::fmt;
use std::time::Duration;

/// CLI-level errors.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing/extraction failed.
    Args(ArgError),
    /// A flag value is semantically invalid (unknown model, bad algorithm).
    Invalid(String),
    /// Planning found no feasible plan.
    NoFeasiblePlan,
    /// The run hit an engine error (OOM).
    Run(RunError),
    /// Filesystem I/O failed.
    Io(std::io::Error),
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Invalid(m) => write!(f, "{m}"),
            CliError::NoFeasiblePlan => write!(f, "search found no memory-feasible plan"),
            CliError::Run(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}
impl From<RunError> for CliError {
    fn from(e: RunError) -> Self {
        CliError::Run(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}

/// Converts a byte offset in `text` into a 1-based `(line, column)`.
fn line_col(text: &str, offset: usize) -> (usize, usize) {
    let prefix = &text[..offset.min(text.len())];
    let line = prefix.bytes().filter(|&b| b == b'\n').count() + 1;
    let col = prefix
        .rfind('\n')
        .map_or(offset.min(text.len()) + 1, |nl| offset - nl);
    (line, col)
}

/// Reads and deserializes a JSON file, prefixing every failure with the
/// file path — and, for parse errors, the `line:column` of the offending
/// byte — so `real run --plan broken.json` points at the problem instead
/// of printing a bare "json error".
pub fn load_json<T: serde::Deserialize>(path: &str) -> Result<T, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    serde_json::from_str(&text).map_err(|e| match e.byte_offset() {
        Some(off) => {
            let (line, col) = line_col(&text, off);
            CliError::Invalid(format!("{path}:{line}:{col}: {e}"))
        }
        None => CliError::Invalid(format!("{path}: {e}")),
    })
}

/// Pre-loads every `graph.json` file referenced by the given tenant specs
/// into a [`GraphSet`], so spec builders can resolve `graph` fields without
/// touching the filesystem themselves (and so a broken graph file fails
/// with a `path:line:col` parse error up front, before anything runs).
fn preload_graphs<'a>(
    tenants: impl IntoIterator<Item = &'a TenantSpec>,
) -> Result<GraphSet, CliError> {
    let mut graphs = GraphSet::new();
    for tenant in tenants {
        if let Some(path) = &tenant.graph {
            if !graphs.contains_key(path) {
                let spec: GraphSpec = load_json(path)?;
                graphs.insert(path.clone(), spec);
            }
        }
    }
    Ok(graphs)
}

/// Usage text.
pub const USAGE: &str = "\
real — ReaL RLHF execution planning on a simulated cluster

USAGE: real <command> [--flag value ...]

COMMANDS:
  plan        search for an execution plan, print it (optionally --out plan.json)
  run         execute a plan (searched, --heuristic, or --plan plan.json)
  replan      resume a saved search checkpoint (--from ckpt.json) with a
              fresh step budget; print (and --out) the improved plan
  baselines   run the four baseline systems plus ReaL on one workload
  profile     run a workload (or analyze a saved trace) and attribute the
              makespan: phases, critical path, per-GPU utilization,
              estimator gap; --baseline/--check gates regressions
  profile-db  profile a model family (--out db.json to save it)
  estimate    per-call estimates + memory for a plan, without running it
  advise      sweep cluster sizes 1..--max-nodes, recommend one (§8.4)
  sched       pack concurrent tenant experiments onto one cluster
              (--tenants tenants.json; see docs/SCHEDULING.md)
  serve       run an open-stream serving workload: seeded arrivals,
              admission control, checkpointed preemption
              (--workload workload.json; see docs/SERVING.md)
  stats       pretty-print a metrics snapshot JSON (--file metrics.json)
  models      print the Table 1 model configurations
  help        this text

WORKLOAD FLAGS (plan/run/baselines):
  --nodes N        cluster nodes, 8 GPUs each        [default 1]
  --actor SIZE     1b | 7b | 13b | 34b | 70b         [default 7b]
  --critic SIZE    1b | 7b | 13b | 34b | 70b         [default 7b]
  --algo A         ppo|dpo|grpo|remax|raft|itdpo     [default ppo]
  --batch B        global batch (prompts)            [default 128]
  --ctx-scale K    context 2048*K, batch/K (Fig. 8)  [default 1]
  --seed S                                           [default 1]
  --graph FILE     load a user-defined graph.json workflow instead of
                   --algo/--actor/--critic/--batch (validated against
                   the estimator; see docs/DATAFLOWS.md)

SEARCH FLAGS (plan/run):
  --steps N        MCMC step budget                  [default 40000]
  --time SECS      search wall-clock budget          [default 20]
  --chains N       parallel chains                   [default 1]
  --threads N      worker threads for --chains; the chosen plan is
                   bit-identical for any value       [default: chains]
  --no-memo        disable the incremental memoized cost path (prices
                   every proposal from scratch; same plan, slower)
  --memo-stats     print memo-cache hits/misses/hit-rate after the search
  --memo-in FILE   warm-start pricing from a saved cost-memo snapshot; a
                   snapshot from a different pricing context (cluster,
                   graph, profiles, health) is ignored with a warning
  --memo-out FILE  save the search's cost memo for the next `real plan`
  --spec-decode    make speculative draft/verify decode a search dimension
                   on generation calls (see docs/SPECULATION.md)
  --draft-model S  comma-separated draft sizes to consider  [default 1b,7b]
  --spec-k KS      comma-separated speculation lengths    [default 2,4,6,8]
  --acceptance A   replace the calibrated acceptance curves with a
                   constant in [0, 1] (ablations)
  --no-spec        force speculation off (wins over the flags above)
  --explain        (plan) diff the plan against the heuristic
  --out FILE       (plan) save the plan as JSON
  --checkpoint F   (plan/replan) save a resumable search checkpoint JSON
  --from FILE      (replan) checkpoint to resume from

RUN FLAGS:
  --iters N        RLHF iterations to execute        [default 2]
  --plan FILE      execute a saved plan JSON
  --heuristic      execute the symmetric REAL-Heuristic plan
  --no-cuda-graph  disable CUDA-graph generation
  --trace FILE     write a Chrome/Perfetto trace JSON of the run
  --metrics FILE   write a metrics snapshot JSON (runtime + search telemetry;
                   also accepted by estimate for Algorithm-1 queue telemetry)
  --quick-profile  reduced profiling grid (faster, coarser)
  --profile-db F   comma-separated saved profile JSONs to reuse
  --faults FILE    inject a FaultPlan JSON (slowdowns, crashes, link
                   degradation); the run reports retries and lost work
  --max-retries N  retry budget per request before degraded mode [default 3]
  --replan         enable elastic re-planning: when faults kill a worker or
                   degrade throughput, re-search on the surviving GPUs and
                   switch plans mid-run (needs --faults to have any effect)
  --replan-steps N MCMC budget per mid-run re-search          [default 2000]
  --dead-after S   declare a worker dead after S stalled secs [default 120]
  --async-offpolicy  overlap next-iteration generation with the current
                   training step on disjoint meshes (staleness-bounded
                   off-policy execution; a graph.json `offpolicy` section
                   enables this too). Without --plan/--heuristic the run
                   uses a gen/train split placement when one fits.
  --staleness N    async off-policy staleness bound            [default 1]

PROFILE FLAGS:
  --trace FILE     analyze a saved Chrome trace instead of running
                   (no estimator-gap section in that mode)
  --top N          critical-path entries to keep          [default 10]
  --out FILE       save the ProfileReport JSON
  --json           print the report as JSON instead of tables
  --baseline FILE  compare against a saved ProfileReport JSON
  --check          fail (non-zero) when the baseline comparison drifts
  --tolerance-pct N  allowed drift per check              [default 5]
  (plus the workload and run flags: --heuristic / --plan for plan
  selection, --iters, --faults, ...)

SCHED FLAGS:
  --tenants FILE   tenant-set spec JSON (required; see docs/SCHEDULING.md)
  --dry-run        print allocations + estimated step times, don't run
  --seed S         override the spec seed
  --steps N        per-tenant plan refinement budget        [default 2000]
  --score-steps N  MCMC budget per candidate allocation     [default 300]
  --max-stretch X  fairness bound on per-tenant slowdown    [default 4.0]
  --trace FILE     Chrome trace with one process group per tenant
  --metrics FILE   sched/* metrics snapshot JSON
  --json           print the SchedReport as JSON

SERVE FLAGS:
  --workload FILE  workload spec JSON (required; see docs/SERVING.md)
  --seed S         override the spec seed
  --horizon SECS   override the simulated horizon
  --max-stretch X  override the admission stretch bound      [default 4.0]
  --probe-steps N  MCMC budget per (template, mesh) pricing  [default 200]
  --admit-all      disable admission control and preemption (the
                   ablation baseline: never reject, never preempt)
  --no-preemption  keep admission control but never preempt
  --trace FILE     Chrome trace with one lifecycle lane per arrival
  --metrics FILE   serve/* metrics snapshot JSON
  --json           print the ServeReport as JSON
";

/// Builds an [`Experiment`] from common workload flags.
pub fn experiment_from(args: &Args) -> Result<Experiment, CliError> {
    let nodes: u32 = args.num_or("nodes", 1)?;
    if nodes == 0 || !nodes.is_power_of_two() {
        return Err(CliError::Invalid(format!(
            "--nodes must be a positive power of two, got {nodes}"
        )));
    }
    let cluster = ClusterSpec::h100(nodes);
    let actor = model_flag(args, "actor")?;
    let critic = model_flag(args, "critic")?.critic();
    let batch: u64 = args.num_or("batch", 128)?;
    let ctx_scale: u64 = args.num_or("ctx-scale", 1)?;
    if ctx_scale == 0 || !batch.is_multiple_of(ctx_scale) {
        return Err(CliError::Invalid(format!(
            "--ctx-scale {ctx_scale} must be positive and divide --batch {batch}"
        )));
    }
    let cfg = RlhfConfig::instruct_gpt(batch).with_context_scale(ctx_scale);
    let mut exp = if let Some(gpath) = args.str_opt("graph") {
        let spec: GraphSpec = load_json(gpath)?;
        Experiment::from_graph(cluster, &spec)
            .map_err(|e| CliError::Invalid(format!("--graph {gpath}: {e}")))?
    } else {
        let algo = args.str_or("algo", "ppo");
        match algo.as_str() {
            "ppo" => Experiment::ppo(cluster, actor, critic, cfg),
            "dpo" => Experiment::dpo(cluster, actor, cfg),
            "grpo" => Experiment::grpo(cluster, actor, critic, cfg),
            "remax" => Experiment::remax(cluster, actor, critic, cfg),
            "raft" => Experiment::raft(cluster, actor, critic, cfg),
            "itdpo" => Experiment::iterative_dpo(cluster, actor, critic, cfg),
            other => {
                return Err(CliError::Invalid(format!(
                    "unknown --algo {other}; expected ppo|dpo|grpo|remax|raft|itdpo"
                )))
            }
        }
    };
    exp = exp.with_seed(args.num_or("seed", 1)?);
    if args.flag("quick-profile") {
        exp = exp.with_quick_profile();
    }
    if let Some(path) = args.str_opt("profile-db") {
        let mut profiles = Vec::new();
        for part in path.split(',') {
            let db: ProfileDb = load_json(part)?;
            profiles.push(db);
        }
        exp = exp.with_profiles(profiles);
    }
    // Async off-policy: --async-offpolicy enables it, a graph spec's
    // `offpolicy` section enables it, and --staleness overrides either
    // bound.
    let spec_staleness = exp.async_staleness();
    if args.flag("async-offpolicy") || spec_staleness.is_some() {
        let default = spec_staleness.unwrap_or(real_core::real_dataflow::spec::DEFAULT_STALENESS);
        let staleness: u32 = args.num_or("staleness", default)?;
        if staleness > real_core::real_dataflow::spec::MAX_STALENESS {
            return Err(CliError::Invalid(format!(
                "--staleness {staleness} exceeds the maximum of {}",
                real_core::real_dataflow::spec::MAX_STALENESS
            )));
        }
        exp = exp.with_async_offpolicy(staleness);
    }
    // The engine configuration is based on the experiment's own (which
    // carries the graph spec's call hooks), not a fresh default.
    let mut engine = exp.engine_config().clone();
    if args.flag("no-cuda-graph") {
        engine.cuda_graph = false;
    }
    if args.str_opt("trace").is_some() {
        engine.trace_capacity = 500_000;
    }
    if let Some(path) = args.str_opt("faults") {
        let plan: FaultPlan = load_json(path)?;
        if let Err(e) = plan.validate() {
            return Err(CliError::Invalid(format!("--faults {path}: {e}")));
        }
        engine.fault_plan = Some(plan);
    }
    engine.max_retries = args.num_or("max-retries", engine.max_retries)?;
    let exp = exp.with_engine_config(engine);
    // A user-defined graph must also be *searchable*: price every call
    // through the estimator before planning or running anything with it.
    if let Some(gpath) = args.str_opt("graph") {
        let (est, _) = exp.prepare();
        probe::probe(&est).map_err(|e| CliError::Invalid(format!("--graph {gpath}: {e}")))?;
    }
    Ok(exp)
}

fn model_flag(args: &Args, flag: &str) -> Result<ModelSpec, CliError> {
    let size = args.str_or(flag, "7b");
    ModelSpec::by_size(&size).ok_or_else(|| {
        CliError::Invalid(format!(
            "unknown --{flag} {size}; expected 1b|7b|13b|34b|70b"
        ))
    })
}

/// Builds the speculation menu from `--spec-decode` / `--draft-model` /
/// `--spec-k` / `--acceptance`. Returns `None` when speculation stays off:
/// the default, or forced with `--no-spec` (which wins over the others).
fn spec_menu_from(args: &Args, cluster: &ClusterSpec) -> Result<Option<SpecMenu>, CliError> {
    let requested = args.flag("spec-decode")
        || args.str_opt("draft-model").is_some()
        || args.str_opt("spec-k").is_some()
        || args.str_opt("acceptance").is_some();
    if args.flag("no-spec") || !requested {
        return Ok(None);
    }
    let drafts = match args.str_opt("draft-model") {
        Some(sizes) => {
            let mut drafts = Vec::new();
            for size in sizes.split(',') {
                drafts.push(ModelSpec::by_size(size).ok_or_else(|| {
                    CliError::Invalid(format!(
                        "unknown --draft-model {size}; expected 1b|7b|13b|34b|70b"
                    ))
                })?);
            }
            drafts
        }
        None => vec![ModelSpec::llama3_1b(), ModelSpec::llama3_7b()],
    };
    let ks = match args.str_opt("spec-k") {
        Some(ks) => {
            let mut out = Vec::new();
            for k in ks.split(',') {
                let k: u32 = k.parse().map_err(|_| {
                    CliError::Invalid(format!("--spec-k: cannot parse {k:?} as a length"))
                })?;
                if k == 0 {
                    return Err(CliError::Invalid(
                        "--spec-k lengths must be positive".into(),
                    ));
                }
                out.push(k);
            }
            out
        }
        None => vec![2, 4, 6, 8],
    };
    let mut menu = SpecMenu::build(cluster, drafts, ks, SpecTask::RlhfRollout);
    if args.str_opt("acceptance").is_some() {
        let alpha: f64 = args.num_or("acceptance", 0.0)?;
        if !(0.0..=1.0).contains(&alpha) {
            return Err(CliError::Invalid(format!(
                "--acceptance {alpha} must be within [0, 1]"
            )));
        }
        menu = menu.with_curve(AcceptanceCurve::Constant(alpha));
    }
    Ok(Some(menu))
}

/// The speculation-aware / memo-persistent planning path shared by `plan`,
/// `run`, and `profile`: runs [`Experiment::plan_speculative`] (with an
/// empty menu when only memo persistence was asked for), handles
/// `--memo-in` restore (warning on a context mismatch) and `--memo-out`
/// snapshot, and returns the planned outcome.
fn plan_speculative_from(
    args: &Args,
    exp: &Experiment,
    menu: Option<SpecMenu>,
) -> Result<(SpecPlannedExperiment, String), CliError> {
    let (cfg, _, _) = mcmc_from(args)?;
    let warm: Option<MemoSnapshot> = match args.str_opt("memo-in") {
        Some(path) => Some(load_json(path)?),
        None => None,
    };
    let menu = menu.unwrap_or_else(SpecMenu::empty);
    let planned = exp
        .plan_speculative(&cfg, &menu, warm.as_ref())
        .map_err(|_| CliError::NoFeasiblePlan)?;
    let mut notes = String::new();
    if let Some(path) = args.str_opt("memo-in") {
        if planned.warm_start {
            notes.push_str(&format!("memo: warm start from {path}\n"));
        } else {
            notes.push_str(&format!(
                "memo: {path} was priced under a different context \
                 (cluster/graph/profiles changed); cold start\n"
            ));
        }
    }
    if let Some(path) = args.str_opt("memo-out") {
        std::fs::write(path, serde_json::to_string(&planned.memo)?)?;
        notes.push_str(&format!(
            "memo: {} entries saved to {path}\n",
            planned.memo.n_entries()
        ));
    }
    Ok((planned, notes))
}

/// Search configuration from flags: `(config, chains, threads)`.
pub fn mcmc_from(args: &Args) -> Result<(McmcConfig, usize, usize), CliError> {
    let cfg = McmcConfig {
        max_steps: args.num_or("steps", 40_000u64)?,
        time_limit: Duration::from_secs(args.num_or("time", 20u64)?),
        seed: args.num_or("seed", 1u64)?,
        memo: !args.flag("no-memo"),
        ..McmcConfig::default()
    };
    let chains: usize = args.num_or("chains", 1usize)?;
    if chains == 0 {
        return Err(CliError::Invalid("--chains must be positive".into()));
    }
    // The plan is bit-identical for any thread count; --threads only caps
    // the worker pool (e.g. on a shared login node).
    let threads: usize = args.num_or("threads", chains)?;
    if threads == 0 {
        return Err(CliError::Invalid("--threads must be positive".into()));
    }
    Ok((cfg, chains, threads))
}

/// Runs the configured search: multi-chain when `--chains > 1`.
fn plan_searched(
    exp: &Experiment,
    cfg: &McmcConfig,
    chains: usize,
    threads: usize,
) -> Result<real_core::PlannedExperiment, CliError> {
    if chains > 1 {
        exp.plan_auto_parallel_on(cfg, chains, threads)
    } else {
        exp.plan_auto(cfg)
    }
    .map_err(|_| CliError::NoFeasiblePlan)
}

/// The `--memo-stats` section: memo-cache effectiveness for one search.
fn memo_stats_line(search: &SearchResult) -> String {
    let m = &search.memo;
    format!(
        "memo: {} hits / {} misses (hit rate {:.1}%), {} entries, {} invalidations\n",
        m.hits,
        m.misses,
        m.hit_rate() * 100.0,
        m.entries,
        m.invalidations,
    )
}

/// `real plan`
pub fn cmd_plan(args: &Args) -> Result<String, CliError> {
    let exp = experiment_from(args)?;
    let menu = spec_menu_from(args, exp.cluster())?;
    if menu.is_some() || args.str_opt("memo-in").is_some() || args.str_opt("memo-out").is_some() {
        return cmd_plan_speculative(args, &exp, menu);
    }
    let (cfg, chains, threads) = mcmc_from(args)?;
    let planned = plan_searched(&exp, &cfg, chains, threads)?;

    if let Some(path) = args.str_opt("out") {
        std::fs::write(path, serde_json::to_string_pretty(&planned.plan)?)?;
    }
    if let Some(path) = args.str_opt("checkpoint") {
        planned
            .search
            .checkpoint()
            .save(std::path::Path::new(path))?;
    }
    let mut out = String::new();
    out.push_str(&planned.plan.render(exp.graph()));
    if args.flag("explain") {
        let (est, _) = exp.prepare();
        let heuristic = exp.plan_heuristic();
        let cmp = compare(&est, &heuristic, &planned.plan);
        out.push_str("\nvs the symmetric heuristic (single-swap contributions):\n");
        out.push_str(&cmp.render());
    }
    out.push_str(&format!(
        "\nsearch: {} steps, {} accepted ({:.0}%), best TimeCost {:.2}s, profiling {:.0}s (simulated)\n",
        planned.search.steps,
        planned.search.accepted,
        planned.search.acceptance_rate() * 100.0,
        planned.search.best_time_cost,
        planned.profiling_secs,
    ));
    if args.flag("memo-stats") {
        out.push_str(&memo_stats_line(&planned.search));
    }
    Ok(out)
}

/// The `real plan` variant behind `--spec-decode` and `--memo-in/--memo-out`:
/// speculation-aware search through the persistent cost memo. Without
/// speculation flags the menu is empty and the chosen plan is identical to
/// the default path's — only the memo persistence differs.
fn cmd_plan_speculative(
    args: &Args,
    exp: &Experiment,
    menu: Option<SpecMenu>,
) -> Result<String, CliError> {
    let speculating = menu.is_some();
    let (planned, notes) = plan_speculative_from(args, exp, menu)?;
    if let Some(path) = args.str_opt("out") {
        std::fs::write(path, serde_json::to_string_pretty(&planned.plan)?)?;
    }
    if let Some(path) = args.str_opt("checkpoint") {
        planned
            .result
            .base
            .checkpoint()
            .save(std::path::Path::new(path))?;
    }
    let mut out = String::new();
    out.push_str(&planned.plan.render(exp.graph()));
    if args.flag("explain") {
        let (est, _) = exp.prepare();
        let heuristic = exp.plan_heuristic();
        let cmp = compare(&est, &heuristic, &planned.plan);
        out.push_str("\nvs the symmetric heuristic (single-swap contributions):\n");
        out.push_str(&cmp.render());
    }
    out.push_str(&format!(
        "\nsearch: {} steps, {} accepted ({:.0}%), best TimeCost {:.2}s, profiling {:.0}s (simulated)\n",
        planned.result.base.steps,
        planned.result.base.accepted,
        planned.result.base.acceptance_rate() * 100.0,
        planned.result.best_time_cost,
        planned.profiling_secs,
    ));
    if speculating {
        out.push_str(&format!(
            "speculation: {} proposals, {} accepted; TimeCost {:.2}s vs {:.2}s plain ({:.2}x)\n",
            planned.result.spec_steps,
            planned.result.spec_accepted,
            planned.result.best_time_cost,
            planned.result.base.best_time_cost,
            planned.result.speedup_over_base(),
        ));
    }
    if args.flag("memo-stats") {
        let m = &planned.result.memo;
        out.push_str(&format!(
            "memo: {} hits / {} misses (hit rate {:.1}%), {} entries, {} invalidations\n",
            m.hits,
            m.misses,
            m.hit_rate() * 100.0,
            m.entries,
            m.invalidations,
        ));
    }
    out.push_str(&notes);
    Ok(out)
}

/// `real run`
pub fn cmd_run(args: &Args) -> Result<String, CliError> {
    let mut exp = experiment_from(args)?;
    if args.flag("replan") {
        let policy = ReplanPolicy::new()
            .with_search_steps(args.num_or("replan-steps", 2_000u64)?)
            .with_dead_after(args.num_or("dead-after", 120.0f64)?);
        exp = exp.with_replan_policy(policy);
    }
    let mut search: Option<SearchResult> = None;
    let mut plan_notes = String::new();
    let plan: ExecutionPlan = if let Some(path) = args.str_opt("plan") {
        load_json(path)?
    } else if args.flag("heuristic") {
        exp.plan_heuristic()
    } else if let Some(split) = exp.async_staleness().and_then(|_| exp.plan_split()) {
        // Async off-policy wants generation and training on disjoint
        // meshes; the MCMC search optimizes the synchronous TimeCost and
        // tends to colocate them, so default to the split placement.
        split
    } else if let Some(menu) = spec_menu_from(args, exp.cluster())? {
        // Speculation-aware planning: the runtime executes whatever the
        // search attached (draft/verify loops on the draft mesh).
        let (planned, notes) = plan_speculative_from(args, &exp, Some(menu))?;
        plan_notes = notes;
        search = Some(planned.result.base.clone());
        planned.plan
    } else {
        let (cfg, chains, threads) = mcmc_from(args)?;
        let planned = plan_searched(&exp, &cfg, chains, threads)?;
        let plan = planned.plan;
        search = Some(planned.search);
        plan
    };
    let iters: usize = args.num_or("iters", 2)?;
    let report = exp.run(&plan, iters)?;
    if let Some(path) = args.str_opt("trace") {
        let stream = exp.event_stream(&report);
        std::fs::write(path, real_core::real_obs::chrome::to_chrome_string(&stream))?;
    }
    if let Some(path) = args.str_opt("metrics") {
        let metrics = exp.metrics(&report, search.as_ref());
        std::fs::write(path, serde_json::to_string_pretty(&metrics.snapshot())?)?;
    }
    let mut out = report.render(exp.graph());
    if !report.run.async_stats.is_empty() {
        out.push_str(&report.run.async_stats.render_line());
        out.push('\n');
        let stream = exp.event_stream(&report);
        let overlap = real_core::real_obs::profile::phase_overlap(
            &stream,
            real_core::real_obs::Phase::Generation,
            real_core::real_obs::Phase::Training,
        );
        out.push_str(&format!(
            "measured gen/train phase overlap: {overlap:.2}s over {} iteration(s)\n",
            report.run.iterations
        ));
    }
    if args.flag("memo-stats") {
        if let Some(search) = &search {
            out.push_str(&memo_stats_line(search));
        }
    }
    out.push_str(&plan_notes);
    Ok(out)
}

/// `real replan`: resume a saved search checkpoint against a fresh step
/// budget — the offline half of elastic re-planning. The workload flags
/// must describe the same cluster and dataflow graph the checkpoint was
/// searched for.
pub fn cmd_replan(args: &Args) -> Result<String, CliError> {
    let from = args
        .str_opt("from")
        .ok_or_else(|| CliError::Invalid("replan needs --from checkpoint.json".into()))?;
    let ckpt = SearchCheckpoint::load(std::path::Path::new(from))?;
    let exp = experiment_from(args)?;
    if ckpt.chain.best.assignments().len() != exp.graph().n_calls() {
        return Err(CliError::Invalid(format!(
            "--from {from}: checkpoint has {} calls but the workload flags describe {}; \
             pass the same --algo/--actor/--critic/--batch the checkpoint was planned with",
            ckpt.chain.best.assignments().len(),
            exp.graph().n_calls(),
        )));
    }
    let (est, _) = exp.prepare();
    let space = SearchSpace::build(exp.cluster(), exp.graph(), PruneLevel::Aggressive);
    let cfg = McmcConfig {
        max_steps: args.num_or("steps", ckpt.chain.max_steps.saturating_mul(2))?,
        time_limit: Duration::from_secs(args.num_or("time", 20u64)?),
        seed: ckpt.chain.seed,
        ..McmcConfig::default()
    };
    let result = resume(&est, &space, &cfg, &ckpt);
    if let Some(path) = args.str_opt("out") {
        std::fs::write(path, serde_json::to_string_pretty(&result.best_plan)?)?;
    }
    if let Some(path) = args.str_opt("checkpoint") {
        result.checkpoint().save(std::path::Path::new(path))?;
    }
    let mut out = String::new();
    out.push_str(&result.best_plan.render(exp.graph()));
    out.push_str(&format!(
        "\nresumed from step {} to step {}: best TimeCost {:.2}s, {} accepted ({:.0}%)\n",
        ckpt.chain.steps,
        result.steps,
        result.best_time_cost,
        result.accepted,
        result.acceptance_rate() * 100.0,
    ));
    Ok(out)
}

/// `real baselines`
pub fn cmd_baselines(args: &Args) -> Result<String, CliError> {
    let exp = experiment_from(args)?;
    if args.str_or("algo", "ppo") != "ppo" {
        return Err(CliError::Invalid(
            "baselines are defined for --algo ppo".into(),
        ));
    }
    let cluster = exp.cluster().clone();
    let graph = exp.graph().clone();
    let iters: usize = args.num_or("iters", 2)?;
    let tokens = graph
        .calls()
        .iter()
        .map(|c| c.call_type.total_tokens())
        .max()
        .unwrap_or(0);

    let mut table = real_util::Table::new(vec!["system", "tokens/s", "iteration (s)"]);
    for (name, setup) in baselines::all(&cluster, &graph, exp.engine_config()) {
        match setup {
            Ok(b) => {
                let engine = RuntimeEngine::new(cluster.clone(), graph.clone(), b.config);
                match engine.run(&b.plan, iters) {
                    Ok(r) => table.row(vec![
                        name.into(),
                        format!("{:.0}", r.tokens_per_sec(tokens)),
                        format!("{:.1}", r.iter_time),
                    ]),
                    Err(_) => table.row(vec![name.into(), "OOM".into(), "-".into()]),
                }
            }
            Err(_) => table.row(vec![name.into(), "OOM".into(), "-".into()]),
        };
    }
    let (cfg, chains, threads) = mcmc_from(args)?;
    if let Ok(planned) = plan_searched(&exp, &cfg, chains, threads) {
        let r = exp.run(&planned.plan, iters)?;
        table.row(vec![
            "ReaL (searched)".into(),
            format!("{:.0}", r.tokens_per_sec),
            format!("{:.1}", r.run.iter_time),
        ]);
    }
    Ok(table.render())
}

/// `real profile`: phase-attributed makespan profile (Fig. 8/12 views) of
/// a fresh run or a saved trace, with an optional regression gate against
/// a committed baseline report.
pub fn cmd_profile(args: &Args) -> Result<String, CliError> {
    use real_core::real_obs::{phase_overlap, Phase};
    let top_k: usize = args.num_or("top", 10)?;
    let overlap_line = |stream: &real_core::real_obs::EventStream| {
        format!(
            "gen/train phase overlap: {:.2}s\n",
            phase_overlap(stream, Phase::Generation, Phase::Training)
        )
    };
    let overlap;
    let report: real_core::real_obs::ProfileReport = if let Some(path) = args.str_opt("trace") {
        // Analyze a saved Chrome trace. The estimator gap needs the live
        // experiment, so that section stays empty in this mode.
        let value: serde_json::Value = load_json(path)?;
        let stream = real_core::real_obs::from_chrome_value(&value).map_err(CliError::Invalid)?;
        overlap = overlap_line(&stream);
        real_core::real_obs::ProfileReport::from_stream(&stream, top_k)
    } else {
        let exp = experiment_from(args)?;
        // Profiling needs the kernel spans regardless of --trace.
        let mut engine = exp.engine_config().clone();
        if engine.trace_capacity == 0 {
            engine.trace_capacity = 500_000;
        }
        let exp = exp.with_engine_config(engine);
        let plan: ExecutionPlan = if let Some(path) = args.str_opt("plan") {
            load_json(path)?
        } else if args.flag("heuristic") {
            exp.plan_heuristic()
        } else if let Some(split) = exp.async_staleness().and_then(|_| exp.plan_split()) {
            // Same default as `real run`: async off-policy profiles against
            // the disjoint gen/train placement (see cmd_run).
            split
        } else if let Some(menu) = spec_menu_from(args, exp.cluster())? {
            // Speculative plans profile with gen/draft, gen/verify, and
            // gen/fallback sub-rows in the phase attribution.
            plan_speculative_from(args, &exp, Some(menu))?.0.plan
        } else {
            let (cfg, chains, threads) = mcmc_from(args)?;
            plan_searched(&exp, &cfg, chains, threads)?.plan
        };
        let iters: usize = args.num_or("iters", 2)?;
        let run = exp.run(&plan, iters)?;
        overlap = overlap_line(&exp.event_stream(&run));
        let (est, _) = exp.prepare();
        exp.profile_report(&run, &est, top_k)
    };

    if let Some(path) = args.str_opt("out") {
        std::fs::write(path, serde_json::to_string_pretty(&report)?)?;
    }
    let mut out = if args.flag("json") {
        serde_json::to_string_pretty(&report)?
    } else {
        let mut rendered = report.render();
        rendered.push_str(&overlap);
        rendered
    };
    if let Some(bpath) = args.str_opt("baseline") {
        let baseline: real_core::real_obs::ProfileReport = load_json(bpath)?;
        let tolerance: f64 = args.num_or("tolerance-pct", 5.0)?;
        let violations = report.check_against(&baseline, tolerance);
        if violations.is_empty() {
            out.push_str(&format!(
                "\nbaseline check OK: within {tolerance}% of {bpath}\n"
            ));
        } else if args.flag("check") {
            return Err(CliError::Invalid(format!(
                "profile drifted from baseline {bpath}:\n  {}",
                violations.join("\n  ")
            )));
        } else {
            out.push_str(&format!(
                "\nbaseline drift vs {bpath} (tolerance {tolerance}%):\n  {}\n",
                violations.join("\n  ")
            ));
        }
    }
    Ok(out)
}

/// `real profile-db`: profile a model family into a reusable database.
pub fn cmd_profile_db(args: &Args) -> Result<String, CliError> {
    let nodes: u32 = args.num_or("nodes", 1)?;
    let model = model_flag(args, "model").or_else(|_| model_flag(args, "actor"))?;
    let config = if args.flag("quick-profile") {
        ProfileConfig::quick()
    } else {
        ProfileConfig::paper()
    };
    let mut profiler = Profiler::new(
        ClusterSpec::h100(nodes.max(1)),
        config,
        args.num_or("seed", 1)?,
    );
    let db = profiler.profile(&model);
    if let Some(path) = args.str_opt("out") {
        std::fs::write(path, serde_json::to_string(&db)?)?;
    }
    Ok(format!(
        "profiled {}: {} tables from {} samples, {:.0}s of simulated microbenchmarks\n",
        db.model_name(),
        db.n_tables(),
        db.n_samples(),
        db.profiling_secs(),
    ))
}

/// `real estimate`: per-call estimates and memory for a plan without
/// executing it (the lightweight §5.1 path alone).
pub fn cmd_estimate(args: &Args) -> Result<String, CliError> {
    let exp = experiment_from(args)?;
    let plan: ExecutionPlan = if let Some(path) = args.str_opt("plan") {
        load_json(path)?
    } else {
        exp.plan_heuristic()
    };
    let (est, _) = exp.prepare();
    let mut t = real_util::Table::new(vec!["call", "assignment", "estimated (s)"]);
    for (id, def) in exp.graph().iter() {
        let a = plan.assignment(id);
        t.row(vec![
            def.call_name.clone(),
            a.to_string(),
            format!("{:.2}", est.call_duration(id, a)),
        ]);
    }
    // When a metrics snapshot is requested, run the instrumented Algorithm 1
    // so the printed TimeCost and the recorded queue telemetry agree.
    let time_cost = if let Some(path) = args.str_opt("metrics") {
        let mut metrics = MetricsRegistry::new();
        let cost = est.time_cost_instrumented(&plan, &mut metrics);
        metrics.gauge_set("estimator/max_mem_bytes", &[], est.max_mem(&plan) as f64);
        std::fs::write(path, serde_json::to_string_pretty(&metrics.snapshot())?)?;
        cost
    } else {
        est.time_cost(&plan)
    };
    Ok(format!(
        "{}\nTimeCost {:.2}s; MaxMem {} (capacity {}); feasible: {}\n",
        t.render(),
        time_cost,
        real_util::units::fmt_bytes(est.max_mem(&plan)),
        real_util::units::fmt_bytes(exp.cluster().gpu.mem_capacity),
        est.mem_ok(&plan),
    ))
}

/// Formats a label set as `{k=v,k2=v2}` (empty string when unlabelled).
fn fmt_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", parts.join(","))
}

/// `real stats`: pretty-print a metrics snapshot written by
/// `real run --metrics` or `real estimate --metrics`.
pub fn cmd_stats(args: &Args) -> Result<String, CliError> {
    let path = args
        .str_opt("file")
        .ok_or_else(|| CliError::Invalid("stats needs --file metrics.json".into()))?;
    let snap: MetricsSnapshot = load_json(path)?;
    Ok(render_stats(&snap))
}

/// Renders a [`MetricsSnapshot`] as `real-util` tables: one for scalar
/// metrics (counters and gauges), one per distribution kind.
fn render_stats(snap: &MetricsSnapshot) -> String {
    use real_core::real_obs::MetricValue;

    let mut scalars = real_util::Table::new(vec!["metric", "kind", "value"]);
    let mut histograms = real_util::Table::new(vec![
        "histogram",
        "count",
        "mean",
        "p50",
        "p95",
        "p99",
        "sum",
    ]);
    let mut series = real_util::Table::new(vec!["series", "points", "dropped", "last"]);
    let (mut n_scalar, mut n_hist, mut n_series) = (0usize, 0usize, 0usize);
    for entry in &snap.metrics {
        let name = format!("{}{}", entry.name, fmt_labels(&entry.labels));
        match &entry.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                n_scalar += 1;
                scalars.row(vec![name, entry.value.kind().into(), format!("{v:.6}")]);
            }
            MetricValue::Histogram(h) => {
                n_hist += 1;
                let q = |p: f64| {
                    h.quantile(p)
                        .map_or_else(|| "-".into(), |v| format!("{v:.4}"))
                };
                histograms.row(vec![
                    name,
                    h.count().to_string(),
                    format!("{:.4}", h.mean()),
                    q(0.50),
                    q(0.95),
                    q(0.99),
                    format!("{:.4}", h.sum()),
                ]);
            }
            MetricValue::Series(s) => {
                n_series += 1;
                series.row(vec![
                    name,
                    s.points().len().to_string(),
                    s.dropped().to_string(),
                    s.last_y().map_or_else(|| "-".into(), |y| format!("{y:.4}")),
                ]);
            }
        }
    }
    let mut out = String::new();
    if n_scalar > 0 {
        out.push_str(&scalars.render());
    }
    if n_hist > 0 {
        out.push('\n');
        out.push_str(&histograms.render());
    }
    if n_series > 0 {
        out.push('\n');
        out.push_str(&series.render());
    }
    if out.is_empty() {
        out.push_str("no metrics in snapshot\n");
    }
    out
}

/// `real advise`: sweep candidate cluster sizes and recommend one (§8.4).
pub fn cmd_advise(args: &Args) -> Result<String, CliError> {
    let max_nodes: u32 = args.num_or("max-nodes", 8)?;
    if max_nodes == 0 {
        return Err(CliError::Invalid("--max-nodes must be positive".into()));
    }
    let mut candidates = Vec::new();
    let mut n = 1;
    while n <= max_nodes {
        candidates.push(n);
        n *= 2;
    }
    let (cfg, _, _) = mcmc_from(args)?;
    let iters: usize = args.num_or("iters", 2)?;
    // Rebuild the experiment per size by substituting --nodes.
    let rec = real_core::advisor::recommend(&candidates, &cfg, iters, |nodes| {
        let mut patched = args.clone();
        patched.set("nodes", nodes.to_string());
        experiment_from(&patched).expect("flags validated on first use")
    });
    // Validate the base flags once so errors surface cleanly.
    experiment_from(args)?;
    Ok(rec.render())
}

/// `real models`
pub fn cmd_models() -> String {
    let mut t = real_util::Table::new(vec![
        "id",
        "hidden",
        "intermediate",
        "layers",
        "heads",
        "kv",
        "params",
        "params w/o out-embed",
    ]);
    for size in ["1b", "7b", "13b", "34b", "70b"] {
        let m = ModelSpec::by_size(size).expect("preset exists");
        t.row(vec![
            size.into(),
            m.hidden.to_string(),
            m.intermediate.to_string(),
            m.n_layers.to_string(),
            m.n_heads.to_string(),
            m.n_kv_heads.to_string(),
            m.param_count().to_string(),
            m.param_count_no_output_embed().to_string(),
        ]);
    }
    t.render()
}

/// `real sched`: pack the tenants of a `tenants.json` spec onto one
/// cluster and (unless `--dry-run`) execute them jointly.
pub fn cmd_sched(args: &Args) -> Result<String, CliError> {
    let path = args
        .str_opt("tenants")
        .ok_or_else(|| CliError::Invalid("sched needs --tenants tenants.json".into()))?;
    let spec: SchedSpec = load_json(path)?;
    let graphs = preload_graphs(&spec.tenants)?;
    let (cluster, tenants) = spec
        .build_with_graphs(&graphs)
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    let config = SchedConfig {
        seed: args.num_or("seed", spec.seed())?,
        refine_steps: args.num_or("steps", 2_000u64)?,
        score_steps: args.num_or("score-steps", 300u64)?,
        max_stretch: args.num_or("max-stretch", 4.0f64)?,
        trace_capacity: if args.str_opt("trace").is_some() {
            500_000
        } else {
            0
        },
        ..SchedConfig::default()
    };
    let scheduler = Scheduler::new(cluster).with_config(config);
    let sched_err = |e: SchedError| match e {
        SchedError::Run(run) => CliError::Run(run),
        other => CliError::Invalid(other.to_string()),
    };
    if args.flag("dry-run") {
        let schedule = scheduler.plan(&tenants).map_err(sched_err)?;
        return Ok(schedule.render());
    }
    let outcome = scheduler.run(&tenants).map_err(sched_err)?;
    if let Some(path) = args.str_opt("trace") {
        let stream = real_sched::obs::sched_event_stream(&outcome.schedule, &outcome.reports);
        std::fs::write(path, real_core::real_obs::chrome::to_chrome_string(&stream))?;
    }
    if let Some(path) = args.str_opt("metrics") {
        let metrics = real_sched::obs::sched_metrics(&outcome.report);
        std::fs::write(path, serde_json::to_string_pretty(&metrics.snapshot())?)?;
    }
    if args.flag("json") {
        return Ok(serde_json::to_string_pretty(&outcome.report)?);
    }
    // The stretch / queue-wait percentile table is embedded in the report
    // (`SchedReport::percentiles`), so `render()` already includes it.
    Ok(outcome.report.render())
}

/// `real serve`: run a `workload.json` open-stream serving workload — a
/// seeded arrival trace with admission control and checkpointed preemption
/// — and report admission rates, queue-wait/stretch percentiles, and the
/// utilization timeline.
pub fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let path = args
        .str_opt("workload")
        .ok_or_else(|| CliError::Invalid("serve needs --workload workload.json".into()))?;
    let mut spec: real_serve::WorkloadSpec = load_json(path)?;
    if args.str_opt("seed").is_some() {
        spec.seed = Some(args.num_or("seed", spec.seed())?);
    }
    if args.str_opt("horizon").is_some() {
        spec.horizon_secs = Some(args.num_or("horizon", spec.horizon())?);
    }
    let resolved = spec.admission();
    let overridden = args.str_opt("max-stretch").is_some()
        || args.str_opt("probe-steps").is_some()
        || args.flag("admit-all")
        || args.flag("no-preemption");
    if overridden {
        spec.admission = Some(real_serve::AdmissionSpec {
            max_stretch: Some(args.num_or("max-stretch", resolved.max_stretch)?),
            admit_all: Some(resolved.admit_all || args.flag("admit-all")),
            preemption: Some(resolved.preemption && !args.flag("no-preemption")),
            min_benefit_ratio: Some(resolved.min_benefit_ratio),
            probe_steps: Some(args.num_or("probe-steps", resolved.probe_steps)?),
        });
    }
    let graphs = preload_graphs(spec.templates.iter().map(|t| &t.tenant))?;
    let report = real_serve::serve(&spec, &graphs).map_err(|e| CliError::Invalid(e.to_string()))?;
    if let Some(path) = args.str_opt("trace") {
        let stream = real_serve::serve_event_stream(&report);
        std::fs::write(path, real_core::real_obs::chrome::to_chrome_string(&stream))?;
    }
    if let Some(path) = args.str_opt("metrics") {
        let metrics = real_serve::serve_metrics(&report);
        std::fs::write(path, serde_json::to_string_pretty(&metrics.snapshot())?)?;
    }
    if args.flag("json") {
        return Ok(serde_json::to_string_pretty(&report)?);
    }
    Ok(report.render())
}

/// Dispatches a parsed command line.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command() {
        "plan" => cmd_plan(args),
        "run" => cmd_run(args),
        "replan" => cmd_replan(args),
        "baselines" => cmd_baselines(args),
        "profile" => cmd_profile(args),
        "profile-db" => cmd_profile_db(args),
        "estimate" => cmd_estimate(args),
        "advise" => cmd_advise(args),
        "sched" => cmd_sched(args),
        "serve" => cmd_serve(args),
        "stats" => cmd_stats(args),
        "models" => Ok(cmd_models()),
        "help" => Ok(USAGE.to_string()),
        other => Err(CliError::Invalid(format!(
            "unknown command {other:?}; try `real help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Args {
        Args::parse(argv.iter().copied()).unwrap()
    }

    #[test]
    fn models_table_matches_table1() {
        let out = cmd_models();
        assert!(out.contains("8030261248"));
        assert!(out.contains("70553706496"));
    }

    #[test]
    fn experiment_from_defaults() {
        let exp = experiment_from(&parse(&["plan"])).unwrap();
        assert_eq!(exp.cluster().n_nodes, 1);
        assert_eq!(exp.graph().n_calls(), 6); // ppo
    }

    #[test]
    fn experiment_rejects_bad_model_and_algo() {
        assert!(experiment_from(&parse(&["plan", "--actor", "3b"])).is_err());
        assert!(experiment_from(&parse(&["plan", "--algo", "sft"])).is_err());
        assert!(experiment_from(&parse(&["plan", "--nodes", "3"])).is_err());
        assert!(experiment_from(&parse(&["plan", "--ctx-scale", "3", "--batch", "128"])).is_err());
    }

    #[test]
    fn plan_and_run_roundtrip_through_json() {
        let dir = std::env::temp_dir().join("real-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let plan_path = dir.join("plan.json");
        let argv = [
            "plan",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--steps",
            "300",
            "--time",
            "10",
            "--quick-profile",
            "--out",
            plan_path.to_str().unwrap(),
        ];
        let out = cmd_plan(&parse(&argv)).unwrap();
        assert!(out.contains("actor_gen"));
        assert!(plan_path.is_file());

        let argv = [
            "run",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--iters",
            "1",
            "--quick-profile",
            "--plan",
            plan_path.to_str().unwrap(),
        ];
        let out = cmd_run(&parse(&argv)).unwrap();
        assert!(out.contains("throughput"));
    }

    #[test]
    fn plan_thread_and_memo_flags_do_not_change_the_output() {
        let base = vec![
            "plan",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--steps",
            "300",
            "--time",
            "10",
            "--quick-profile",
            "--chains",
            "2",
        ];
        let with = |extra: &[&str]| {
            let mut argv = base.clone();
            argv.extend_from_slice(extra);
            cmd_plan(&parse(&argv)).unwrap()
        };
        // Same plan and search stats for any worker-thread count.
        let one = with(&["--threads", "1", "--memo-stats"]);
        let two = with(&["--threads", "2", "--memo-stats"]);
        assert!(one.contains("memo:"), "--memo-stats prints the cache line");
        assert_eq!(one, two);
        // Disabling the memoized fast path changes nothing but speed.
        assert_eq!(with(&[]), with(&["--no-memo"]));
        // Zero worker threads is rejected up front.
        assert!(matches!(
            mcmc_from(&parse(&["plan", "--threads", "0"])),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn heuristic_run_works() {
        let argv = [
            "run",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--iters",
            "1",
            "--quick-profile",
            "--heuristic",
        ];
        let out = cmd_run(&parse(&argv)).unwrap();
        assert!(out.contains("end2end"));
    }

    #[test]
    fn profile_save_and_reuse_roundtrip() {
        let dir = std::env::temp_dir().join("real-cli-profiles");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("7b.json");
        let c = dir.join("7bc.json");
        cmd_profile_db(&parse(&[
            "profile-db",
            "--model",
            "7b",
            "--quick-profile",
            "--out",
            a.to_str().unwrap(),
        ]))
        .unwrap();
        // Profile the critic architecture via a tiny plan run that saves it.
        let mut profiler = Profiler::new(ClusterSpec::h100(1), ProfileConfig::quick(), 1);
        let db = profiler.profile(&ModelSpec::llama3_7b().critic());
        std::fs::write(&c, serde_json::to_string(&db).unwrap()).unwrap();

        let dbs = format!("{},{}", a.to_str().unwrap(), c.to_str().unwrap());
        let out = cmd_estimate(&parse(&[
            "estimate",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--quick-profile",
            "--profile-db",
            &dbs,
        ]))
        .unwrap();
        assert!(out.contains("TimeCost"));
        assert!(out.contains("feasible: true"));
    }

    #[test]
    fn estimate_without_plan_uses_heuristic() {
        let out = cmd_estimate(&parse(&[
            "estimate",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--quick-profile",
        ]))
        .unwrap();
        assert!(out.contains("actor_gen"));
        assert!(out.contains("MaxMem"));
    }

    #[test]
    fn run_writes_trace_and_metrics_and_stats_prints_them() {
        let dir = std::env::temp_dir().join("real-cli-obs");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.json");
        let metrics_path = dir.join("metrics.json");
        let argv = [
            "run",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--iters",
            "1",
            "--quick-profile",
            "--steps",
            "300",
            "--time",
            "10",
            "--trace",
            trace_path.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
        ];
        let out = cmd_run(&parse(&argv)).unwrap();
        assert!(out.contains("throughput"));

        // The trace parses with serde_json and contains lane metadata,
        // nested spans, counter tracks, and flow arrows.
        let trace: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
        let events = trace.as_array().unwrap();
        for ph in ["M", "B", "E", "C", "s", "f"] {
            assert!(
                events.iter().any(|e| e["ph"].as_str() == Some(ph)),
                "missing phase {ph}"
            );
        }
        assert!(events
            .iter()
            .any(|e| e["name"].as_str() == Some("mem/node0/gpu0")));

        // The metrics snapshot covers both the run and the MCMC search.
        let snap: MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert!(snap
            .metrics
            .iter()
            .any(|e| e.name == "runtime/category_seconds"));
        assert!(snap.metrics.iter().any(|e| e.name == "search/steps"));
        assert!(snap.metrics.iter().any(|e| e.name == "search/energy"));

        let stats =
            cmd_stats(&parse(&["stats", "--file", metrics_path.to_str().unwrap()])).unwrap();
        assert!(stats.contains("runtime/iterations"));
        assert!(stats.contains("search/acceptance_rate"));
        assert!(stats.contains("search/energy"));
    }

    #[test]
    fn stats_renders_histogram_quantiles() {
        let dir = std::env::temp_dir().join("real-cli-stats");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quantiles.json");
        let mut m = MetricsRegistry::new();
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            m.histogram_observe("demo/latency", &[], &[2.0, 5.0, 50.0], v);
        }
        std::fs::write(&path, serde_json::to_string(&m.snapshot()).unwrap()).unwrap();
        let out = cmd_stats(&parse(&["stats", "--file", path.to_str().unwrap()])).unwrap();
        // Golden rendering: the quantile columns interpolate within buckets
        // ((0,2](2) (2,5](2) (5,50](0) (50,inf)(1) for the samples above).
        for expected in ["p50", "p95", "p99", "2.7500", "50.0000", "demo/latency"] {
            assert!(out.contains(expected), "missing {expected:?} in:\n{out}");
        }
    }

    #[test]
    fn profile_attributes_makespan_and_gates_on_baseline() {
        let dir = std::env::temp_dir().join("real-cli-profile");
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("profile.json");
        let argv = [
            "profile",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--iters",
            "1",
            "--quick-profile",
            "--heuristic",
            "--out",
            report_path.to_str().unwrap(),
        ];
        let out = cmd_profile(&parse(&argv)).unwrap();
        for section in ["makespan", "generation", "training", "critical path"] {
            assert!(out.contains(section), "missing {section:?} in:\n{out}");
        }
        let report: real_core::real_obs::ProfileReport =
            serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
        // The acceptance bar: >= 95% of the makespan lands in named phases.
        assert!(
            report.attributed_fraction() >= 0.95,
            "attributed only {:.1}% of the makespan",
            report.attributed_fraction() * 100.0
        );
        assert!(!report.estimator_gap.is_empty());

        // Same seed, same flags: byte-identical report JSON (determinism).
        let json_argv: Vec<&str> = argv[..argv.len() - 2]
            .iter()
            .copied()
            .chain(["--json"])
            .collect();
        let a = cmd_profile(&parse(&json_argv)).unwrap();
        let b = cmd_profile(&parse(&json_argv)).unwrap();
        assert_eq!(a, b);

        // Checking a run against its own report passes...
        let mut check_argv = argv[..argv.len() - 2].to_vec();
        check_argv.extend([
            "--baseline",
            report_path.to_str().unwrap(),
            "--check",
            "--tolerance-pct",
            "5",
        ]);
        let out = cmd_profile(&parse(&check_argv)).unwrap();
        assert!(out.contains("baseline check OK"), "{out}");

        // ...and a 10% synthetic slowdown fails it.
        let mut slow = report.clone();
        slow.makespan *= 1.1;
        let slow_path = dir.join("slow-baseline.json");
        std::fs::write(&slow_path, serde_json::to_string(&slow).unwrap()).unwrap();
        let mut bad_argv = argv[..argv.len() - 2].to_vec();
        bad_argv.extend([
            "--baseline",
            slow_path.to_str().unwrap(),
            "--check",
            "--tolerance-pct",
            "5",
        ]);
        let err = cmd_profile(&parse(&bad_argv)).unwrap_err();
        assert!(
            matches!(&err, CliError::Invalid(m) if m.contains("makespan drifted")),
            "{err}"
        );
    }

    #[test]
    fn profile_analyzes_a_saved_trace() {
        let dir = std::env::temp_dir().join("real-cli-profile-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.json");
        let argv = [
            "run",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--iters",
            "1",
            "--quick-profile",
            "--heuristic",
            "--trace",
            trace_path.to_str().unwrap(),
        ];
        cmd_run(&parse(&argv)).unwrap();
        let out = cmd_profile(&parse(&[
            "profile",
            "--trace",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("makespan"), "{out}");
        assert!(out.contains("generation"), "{out}");
    }

    #[test]
    fn estimate_writes_algorithm1_metrics() {
        let dir = std::env::temp_dir().join("real-cli-obs");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics_path = dir.join("estimate.json");
        let out = cmd_estimate(&parse(&[
            "estimate",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--quick-profile",
            "--metrics",
            metrics_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("TimeCost"));
        let snap: MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert!(snap
            .metrics
            .iter()
            .any(|e| e.name == "estimator/queue_pops"));
        assert!(snap
            .metrics
            .iter()
            .any(|e| e.name == "estimator/makespan_seconds"));
    }

    #[test]
    fn run_with_faults_reports_degraded_mode_accounting() {
        let dir = std::env::temp_dir().join("real-cli-faults");
        std::fs::create_dir_all(&dir).unwrap();
        let faults_path = dir.join("faults.json");
        // One slowdown window wide enough to cover the whole short run, one
        // crash: the report must surface the injected-window count.
        let plan = FaultPlan::new(23)
            .slowdown(0, 0.0, 500.0, 3.0)
            .crash(3, 5.0, 10.0);
        std::fs::write(&faults_path, serde_json::to_string(&plan).unwrap()).unwrap();
        let argv = [
            "run",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--iters",
            "1",
            "--quick-profile",
            "--heuristic",
            "--faults",
            faults_path.to_str().unwrap(),
        ];
        let out = cmd_run(&parse(&argv)).unwrap();
        assert!(out.contains("throughput"));
        assert!(out.contains("faults: 2 injected"), "{out}");

        // Invalid plans are rejected with a pointer to the bad event.
        let bad = faults_path.with_file_name("bad.json");
        std::fs::write(
            &bad,
            serde_json::to_string(&FaultPlan::new(1).slowdown(0, 10.0, 5.0, 2.0)).unwrap(),
        )
        .unwrap();
        let argv = [
            "run",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--quick-profile",
            "--heuristic",
            "--faults",
            bad.to_str().unwrap(),
        ];
        let err = cmd_run(&parse(&argv)).unwrap_err();
        assert!(matches!(err, CliError::Invalid(_)), "{err}");
    }

    #[test]
    fn plan_checkpoint_resumes_through_replan() {
        let dir = std::env::temp_dir().join("real-cli-replan");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt_path = dir.join("ckpt.json");
        let plan_path = dir.join("resumed-plan.json");
        let workload = [
            "--nodes",
            "1",
            "--batch",
            "32",
            "--quick-profile",
            "--time",
            "10",
        ];
        let mut argv = vec!["plan", "--steps", "200"];
        argv.extend_from_slice(&workload);
        argv.extend_from_slice(&["--checkpoint", ckpt_path.to_str().unwrap()]);
        cmd_plan(&parse(&argv)).unwrap();
        assert!(ckpt_path.is_file());

        let mut argv = vec!["replan", "--from", ckpt_path.to_str().unwrap()];
        argv.extend_from_slice(&workload);
        argv.extend_from_slice(&["--steps", "400", "--out", plan_path.to_str().unwrap()]);
        let out = cmd_replan(&parse(&argv)).unwrap();
        assert!(out.contains("resumed from step 200 to step 400"), "{out}");
        assert!(plan_path.is_file());

        // A checkpoint for a different workload is rejected, not resumed.
        let mut argv = vec!["replan", "--from", ckpt_path.to_str().unwrap()];
        argv.extend_from_slice(&workload);
        argv.extend_from_slice(&["--algo", "dpo"]);
        let err = cmd_replan(&parse(&argv)).unwrap_err();
        assert!(matches!(err, CliError::Invalid(_)), "{err}");
    }

    #[test]
    fn replan_requires_from_flag() {
        assert!(matches!(
            cmd_replan(&parse(&["replan"])),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn run_with_replan_switches_off_a_dead_worker() {
        let dir = std::env::temp_dir().join("real-cli-replan-run");
        std::fs::create_dir_all(&dir).unwrap();
        let faults_path = dir.join("dead-worker.json");
        // GPU 3 dies mid-generation and never restarts within the run's
        // horizon: the retry-only path would stall for ~1e6 virtual seconds.
        let plan = FaultPlan::new(23).crash(3, 2.0, 1.0e6);
        std::fs::write(&faults_path, serde_json::to_string(&plan).unwrap()).unwrap();
        let argv = [
            "run",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--iters",
            "1",
            "--quick-profile",
            "--heuristic",
            "--faults",
            faults_path.to_str().unwrap(),
            "--replan",
            "--replan-steps",
            "300",
        ];
        let out = cmd_run(&parse(&argv)).unwrap();
        assert!(out.contains("replan:"), "{out}");
        assert!(out.contains("1 switched"), "{out}");
    }

    #[test]
    fn stats_requires_file_flag() {
        assert!(matches!(
            cmd_stats(&parse(&["stats"])),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn advise_sweeps_and_recommends() {
        let out = cmd_advise(&parse(&[
            "advise",
            "--max-nodes",
            "2",
            "--batch",
            "64",
            "--steps",
            "400",
            "--time",
            "10",
            "--quick-profile",
        ]))
        .unwrap();
        assert!(out.contains("recommendation"));
        assert!(out.contains("nodes"));
    }

    #[test]
    fn dispatch_rejects_unknown_command() {
        let e = dispatch(&parse(&["frobnicate"])).unwrap_err();
        assert!(matches!(e, CliError::Invalid(_)));
    }

    #[test]
    fn help_is_printed() {
        let out = dispatch(&parse(&["help"])).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn sched_requires_tenants_flag() {
        let e = cmd_sched(&parse(&["sched"])).unwrap_err();
        assert!(matches!(e, CliError::Invalid(_)));
    }

    #[test]
    fn sched_dry_run_prints_allocations_without_running() {
        let out = cmd_sched(&parse(&[
            "sched",
            "--tenants",
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/tenants.json"),
            "--dry-run",
            "--steps",
            "100",
            "--score-steps",
            "150",
        ]))
        .unwrap();
        for tenant in ["prod", "dev", "nightly"] {
            assert!(out.contains(tenant), "dry-run lists `{tenant}`");
        }
        assert!(out.contains("est step (s)"));
        assert!(out.contains("weighted makespan"));
    }

    #[test]
    fn sched_runs_tenants_and_writes_observability() {
        let dir = std::env::temp_dir().join("real-cli-sched");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("tenants.json");
        std::fs::write(
            &spec_path,
            r#"{
              "nodes": 2,
              "seed": 4,
              "tenants": [
                {"name": "prod", "algo": "dpo", "actor": "7b", "batch": 64, "priority": 2.0},
                {"name": "dev",  "algo": "dpo", "actor": "7b", "batch": 32}
              ]
            }"#,
        )
        .unwrap();
        let trace_path = dir.join("trace.json");
        let metrics_path = dir.join("metrics.json");
        let argv = [
            "sched",
            "--tenants",
            spec_path.to_str().unwrap(),
            "--steps",
            "100",
            "--score-steps",
            "150",
            "--trace",
            trace_path.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
        ];
        let out = cmd_sched(&parse(&argv)).unwrap();
        assert!(out.contains("prod") && out.contains("dev"));
        assert!(out.contains("fairness"));
        // Stretch / queue-wait percentile rows ride along the report.
        assert!(
            out.contains("stretch") && out.contains("queue-wait-seconds"),
            "{out}"
        );

        // Chrome trace has one process group per tenant.
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let names: Vec<&str> = parsed
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["name"].as_str() == Some("process_name"))
            .filter_map(|e| e["args"]["name"].as_str())
            .collect();
        assert!(names.contains(&"tenant:prod") && names.contains(&"tenant:dev"));

        // Metrics snapshot carries the sched/* namespace.
        let snap: MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert!(snap
            .metrics
            .iter()
            .any(|e| e.name == "sched/fairness_index"));
        assert!(snap.metrics.iter().any(|e| e.name == "sched/stretch"
            && e.labels.iter().any(|(k, v)| k == "tenant" && v == "prod")));
        assert!(snap.metrics.iter().any(|e| e.name == "sched/stretch_hist"));
        assert!(snap
            .metrics
            .iter()
            .any(|e| e.name == "sched/queue_wait_hist"));

        // Seeded runs replay: the JSON report is byte-identical.
        let mut json_argv = vec!["sched", "--tenants", spec_path.to_str().unwrap()];
        json_argv.extend(["--steps", "100", "--score-steps", "150", "--json"]);
        let a = cmd_sched(&parse(&json_argv)).unwrap();
        let b = cmd_sched(&parse(&json_argv)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serve_requires_workload_flag() {
        let e = cmd_serve(&parse(&["serve"])).unwrap_err();
        assert!(matches!(e, CliError::Invalid(_)));
    }

    #[test]
    fn serve_runs_a_workload_and_writes_observability() {
        let dir = std::env::temp_dir().join("real-cli-serve");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("workload.json");
        std::fs::write(
            &spec_path,
            r#"{
              "nodes": 1,
              "seed": 3,
              "horizon_secs": 600,
              "arrivals": {"Trace": {"times_secs": [0.0, 30.0], "templates": [0, 0]}},
              "templates": [
                {"tenant": {"name": "train", "algo": "dpo", "actor": "7b",
                            "batch": 32, "iterations": 1}}
              ]
            }"#,
        )
        .unwrap();
        let trace_path = dir.join("trace.json");
        let metrics_path = dir.join("metrics.json");
        let argv = [
            "serve",
            "--workload",
            spec_path.to_str().unwrap(),
            "--probe-steps",
            "60",
            "--trace",
            trace_path.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
        ];
        let out = cmd_serve(&parse(&argv)).unwrap();
        assert!(out.contains("train-0") && out.contains("train-1"), "{out}");
        assert!(
            out.contains("stretch") && out.contains("queue-wait-seconds"),
            "{out}"
        );
        assert!(out.contains("arrivals 2"), "{out}");

        // Chrome trace has one process group per arrival.
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let names: Vec<&str> = parsed
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["name"].as_str() == Some("process_name"))
            .filter_map(|e| e["args"]["name"].as_str())
            .collect();
        assert!(names.contains(&"tenant:train-0") && names.contains(&"tenant:train-1"));

        // Metrics snapshot carries the serve/* namespace.
        let snap: MetricsSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert!(snap.metrics.iter().any(|e| e.name == "serve/arrivals"));
        assert!(snap.metrics.iter().any(|e| e.name == "serve/stretch_hist"));

        // Seeded runs replay: the JSON report is byte-identical, and the
        // --admit-all ablation flag parses and runs.
        let base = ["serve", "--workload", spec_path.to_str().unwrap()];
        let mut json_argv = base.to_vec();
        json_argv.extend(["--probe-steps", "60", "--json"]);
        let a = cmd_serve(&parse(&json_argv)).unwrap();
        let b = cmd_serve(&parse(&json_argv)).unwrap();
        assert_eq!(a, b);
        let mut ablate = base.to_vec();
        ablate.extend(["--probe-steps", "60", "--admit-all", "--json"]);
        let c = cmd_serve(&parse(&ablate)).unwrap();
        assert!(c.contains("\"rejected\": 0"), "{c}");
    }

    #[test]
    fn spec_decode_flags_surface_speculation_and_no_spec_suppresses_it() {
        let base = vec![
            "plan",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--steps",
            "300",
            "--time",
            "10",
            "--quick-profile",
            "--chains",
            "2",
        ];
        let with = |extra: &[&str]| {
            let mut argv = base.clone();
            argv.extend_from_slice(extra);
            cmd_plan(&parse(&argv)).unwrap()
        };
        // High constant acceptance: the search keeps a draft and the plan
        // printout grows a speculation table plus a speedup line.
        let spec = with(&["--spec-decode", "--acceptance", "0.95"]);
        assert!(spec.contains("speculative decoding:"), "{spec}");
        assert!(
            spec.contains("speculation:") && spec.contains("plain ("),
            "{spec}"
        );
        // --no-spec wins over every speculation flag: byte-identical to the
        // default planner output (inertness).
        assert_eq!(
            with(&["--spec-decode", "--acceptance", "0.95", "--no-spec"]),
            with(&[])
        );
        // Bad values are rejected up front, not deep in the search.
        let bad = |extra: &[&str]| {
            let mut argv = base.clone();
            argv.extend_from_slice(extra);
            cmd_plan(&parse(&argv))
        };
        assert!(matches!(
            bad(&["--acceptance", "1.5"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            bad(&["--draft-model", "3b"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            bad(&["--spec-decode", "--spec-k", "0"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn memo_roundtrips_across_plan_invocations() {
        let dir = std::env::temp_dir().join("real-cli-memo");
        std::fs::create_dir_all(&dir).unwrap();
        let memo_path = dir.join("memo.json");
        let base = vec![
            "plan",
            "--nodes",
            "1",
            "--batch",
            "32",
            "--steps",
            "300",
            "--time",
            "10",
            "--quick-profile",
            "--chains",
            "2",
        ];
        let with = |extra: &[&str]| {
            let mut argv = base.clone();
            argv.extend_from_slice(extra);
            cmd_plan(&parse(&argv)).unwrap()
        };
        // Cold run saves the priced-call cache next to the plan.
        let cold = with(&["--memo-out", memo_path.to_str().unwrap(), "--memo-stats"]);
        assert!(memo_path.is_file());
        assert!(cold.contains("entries saved to"), "{cold}");
        let snap: MemoSnapshot =
            serde_json::from_str(&std::fs::read_to_string(&memo_path).unwrap()).unwrap();
        assert!(snap.n_entries() > 0);

        // Warm run restores it, reports the warm start, prices every call
        // from cache, and picks the identical plan.
        let warm = with(&["--memo-in", memo_path.to_str().unwrap(), "--memo-stats"]);
        assert!(warm.contains("warm start from"), "{warm}");
        assert!(warm.contains("/ 0 misses"), "{warm}");
        let table = |out: &str| {
            out.lines()
                .take_while(|l| !l.starts_with("search:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table(&cold), table(&warm));
        // And both match the memo-less default planner (cache is invisible).
        assert_eq!(table(&cold), table(&with(&[])));

        // A snapshot priced under a different context is refused: the run
        // still succeeds, but cold-starts and says why.
        let mut argv = base.clone();
        argv[4] = "64"; // different global batch -> different graph fingerprint
        argv.extend_from_slice(&["--memo-in", memo_path.to_str().unwrap()]);
        let stale = cmd_plan(&parse(&argv)).unwrap();
        assert!(stale.contains("cold start"), "{stale}");
    }
}
