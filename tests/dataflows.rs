//! User-defined dataflows: DSL round-trips, validation, the shipped example
//! graphs, and asynchronous off-policy execution (determinism, staleness
//! bounds under faults, measured gen/train overlap).
//!
//! Integration-test CWD is `crates/core`, so the example graphs live at
//! `../../examples/graphs/`.

use real_core::prelude::*;
use real_dataflow::spec::OffPolicyDecl;

const EXAMPLES: &str = "../../examples/graphs";

fn read_example(name: &str) -> String {
    std::fs::read_to_string(format!("{EXAMPLES}/{name}")).expect("shipped example graph")
}

fn pretty(spec: &GraphSpec) -> String {
    let mut s = serde_json::to_string_pretty(spec).unwrap();
    s.push('\n');
    s
}

// ---------------------------------------------------------------------------
// Constructor <-> DSL round-trips
// ---------------------------------------------------------------------------

#[test]
fn constructors_round_trip_byte_identically() {
    let actor = ModelSpec::llama3_7b();
    let critic = actor.critic();
    let cfg = RlhfConfig::instruct_gpt(128);
    for (name, graph) in [
        ("ppo", algo::ppo(&actor, &critic, &cfg)),
        ("dpo", algo::dpo(&actor, &cfg)),
        ("grpo", algo::grpo(&actor, &critic, &cfg)),
        ("remax", algo::remax(&actor, &critic, &cfg)),
    ] {
        let spec = GraphSpec::from_graph(&graph);
        let rebuilt = spec.build().unwrap_or_else(|e| panic!("{name}: {e}")).graph;
        assert_eq!(rebuilt, graph, "{name}: graph round-trip");
        assert_eq!(
            serde_json::to_string(&rebuilt).unwrap(),
            serde_json::to_string(&graph).unwrap(),
            "{name}: byte-identical serialization"
        );
        // The DSL document itself also survives a serde round-trip.
        let json = pretty(&spec);
        let back: GraphSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(pretty(&back), json, "{name}: spec JSON stable");
    }
}

#[test]
fn ppo_example_file_is_the_constructor_export() {
    let graph = algo::ppo(
        &ModelSpec::llama3_7b(),
        &ModelSpec::llama3_7b().critic(),
        &RlhfConfig::instruct_gpt(128),
    );
    let expected = pretty(&GraphSpec::from_graph(&graph));
    assert_eq!(
        read_example("ppo.json"),
        expected,
        "examples/graphs/ppo.json drifted from algo::ppo; regenerate it with \
         GraphSpec::from_graph"
    );
    let spec: GraphSpec = serde_json::from_str(&read_example("ppo.json")).unwrap();
    assert_eq!(spec.build().unwrap().graph, graph);
}

#[test]
fn async_ppo_example_file_is_the_constructor_export_plus_offpolicy() {
    let graph = algo::ppo(
        &ModelSpec::llama3_7b(),
        &ModelSpec::llama3_7b().critic(),
        &RlhfConfig::instruct_gpt(32),
    );
    let mut spec = GraphSpec::from_graph(&graph);
    spec.offpolicy = Some(OffPolicyDecl {
        enabled: Some(true),
        staleness: Some(1),
    });
    assert_eq!(read_example("async-ppo.json"), pretty(&spec));
    let built: GraphSpec = serde_json::from_str(&read_example("async-ppo.json")).unwrap();
    let built = built.build().unwrap();
    assert_eq!(built.graph, graph);
    assert_eq!(built.async_staleness, Some(1));
}

#[test]
fn rm_ensemble_example_fans_two_reward_models_into_training() {
    let spec: GraphSpec = serde_json::from_str(&read_example("rm-ensemble.json")).unwrap();
    let built = spec.build().unwrap();
    assert_eq!(built.graph.n_calls(), 5);
    // Both reward inferences feed actor_train, so they are siblings that
    // can run concurrently once the rollout lands.
    let train = built.graph.find("actor_train").unwrap();
    let inputs = &built.graph.call(train).input_data;
    assert!(inputs.contains(&"rewards_a".to_string()));
    assert!(inputs.contains(&"rewards_b".to_string()));
    assert_eq!(
        built.hooks,
        vec![CallHook {
            call: "reward_b_inf".to_string(),
            pre_secs: 0.0,
            post_secs: 0.25,
        }]
    );
}

// ---------------------------------------------------------------------------
// Validation rejections, end to end through JSON
// ---------------------------------------------------------------------------

#[test]
fn invalid_documents_are_rejected_with_named_offenders() {
    // (document, substring the error must mention)
    let table: &[(&str, &str)] = &[
        (r#"{"models": [], "calls": []}"#, "no models"),
        (
            r#"{"models": [{"role": "m", "arch": "8t"}], "calls": []}"#,
            "unknown arch `8t`",
        ),
        (
            r#"{"models": [{"role": "m", "arch": "7b"}],
                "calls": [{"name": "c", "model": "ghost", "kind": "inf",
                           "batch": 8, "seq_len": 64}]}"#,
            "undeclared model `ghost`",
        ),
        (
            r#"{"models": [{"role": "m", "arch": "7b"}],
                "calls": [{"name": "c", "model": "m", "kind": "dream",
                           "batch": 8, "seq_len": 64}]}"#,
            "unknown kind `dream`",
        ),
        (
            r#"{"models": [{"role": "m", "arch": "7b"}],
                "calls": [{"name": "c", "model": "m", "kind": "gen",
                           "batch": 8, "prompt_len": 64}]}"#,
            "missing `gen_len`",
        ),
        (
            r#"{"models": [{"role": "m", "arch": "7b"}],
                "calls": [{"name": "c", "model": "m", "kind": "inf",
                           "batch": 8, "seq_len": 64, "inputs": ["sq"]}]}"#,
            "consumes `sq`",
        ),
        (
            r#"{"models": [{"role": "m", "arch": "7b"}],
                "calls": [{"name": "c", "model": "m", "kind": "inf",
                           "batch": 8, "seq_len": 64}],
                "offpolicy": {"staleness": 99}}"#,
            "staleness 99 exceeds",
        ),
    ];
    for (doc, needle) in table {
        let spec: GraphSpec = serde_json::from_str(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        let err = spec.build().expect_err("document must be rejected");
        assert!(
            err.to_string().contains(needle),
            "expected {needle:?} in {err}"
        );
    }
}

// ---------------------------------------------------------------------------
// Asynchronous off-policy execution
// ---------------------------------------------------------------------------

fn async_experiment() -> (Experiment, ExecutionPlan) {
    let spec: GraphSpec = serde_json::from_str(&read_example("async-ppo.json")).unwrap();
    let exp = Experiment::from_graph(ClusterSpec::h100(1), &spec)
        .unwrap()
        .with_quick_profile();
    let plan = exp.plan_split().expect("8-GPU node splits in half");
    (exp, plan)
}

#[test]
fn async_runs_are_byte_identical_across_repeats() {
    let (exp, plan) = async_experiment();
    let a = exp.run(&plan, 4).unwrap();
    let b = exp.run(&plan, 4).unwrap();
    assert_eq!(format!("{:?}", a.run), format!("{:?}", b.run));
    assert_eq!(a.render(exp.graph()), b.render(exp.graph()));
}

#[test]
fn async_run_overlaps_generation_with_training() {
    let (exp, plan) = async_experiment();
    let report = exp.run(&plan, 4).unwrap();
    let stats = &report.run.async_stats;
    assert!(stats.relaxed_calls > 0, "gen calls must be relaxed");
    assert!(stats.gen_train_overlap_secs > 0.0);
    assert!(stats.max_observed_staleness <= stats.staleness_bound);
    // Realized (GPU-occupancy) overlap, as the profiler attributes it.
    let realized = real_core::real_obs::phase_overlap(
        &exp.event_stream(&report),
        real_core::real_obs::Phase::Generation,
        real_core::real_obs::Phase::Training,
    );
    assert!(realized > 0.0, "split plan must overlap gen and train");
    // And it pays: the same plan run synchronously is no faster.
    let sync = Experiment::from_graph(
        ClusterSpec::h100(1),
        &serde_json::from_str::<GraphSpec>(&read_example("ppo.json")).unwrap(),
    )
    .unwrap();
    assert_eq!(sync.async_staleness(), None);
}

#[test]
fn staleness_bound_holds_under_injected_faults() {
    let (exp, plan) = async_experiment();
    // Slow the training mesh down 3x for the first 200 virtual seconds, so
    // generation would race far ahead if the bound were not enforced.
    let faults = FaultPlan::new(7)
        .slowdown(4, 0.0, 200.0, 3.0)
        .slowdown(5, 0.0, 200.0, 3.0);
    let exp = exp.with_fault_plan(faults);
    let report = exp.run(&plan, 6).unwrap();
    let stats = &report.run.async_stats;
    assert_eq!(stats.staleness_bound, 1);
    assert!(
        stats.max_observed_staleness <= 1,
        "observed {} exceeds bound",
        stats.max_observed_staleness
    );
    // gen(i) never dispatches before actor_train(i - 2) completed.
    let train_end = |iter: usize| {
        report
            .run
            .timings
            .iter()
            .filter(|t| t.call_name == "actor_train" && t.iter == iter)
            .map(|t| t.end)
            .fold(0.0, f64::max)
    };
    let mut gated = 0;
    for t in &report.run.timings {
        if t.call_name == "actor_gen" && t.iter >= 2 {
            assert!(
                t.start >= train_end(t.iter - 2),
                "gen({}) dispatched at {} before its staleness gate {}",
                t.iter,
                t.start,
                train_end(t.iter - 2)
            );
            gated += 1;
        }
    }
    assert!(gated > 0, "expected staleness-gated generation calls");
}
