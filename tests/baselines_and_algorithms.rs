//! Integration tests for the §8.1 baseline emulations and the §8.3
//! beyond-PPO algorithms.

use real_core::prelude::*;
use std::time::Duration;

fn quick_search(steps: u64) -> McmcConfig {
    McmcConfig {
        max_steps: steps,
        time_limit: Duration::from_secs(30),
        ..McmcConfig::default()
    }
}

#[test]
fn all_baselines_run_for_7b_on_two_nodes() {
    let cluster = ClusterSpec::h100(2);
    let actor = ModelSpec::llama3_7b();
    let graph = algo::ppo(&actor, &actor.critic(), &RlhfConfig::instruct_gpt(512));
    let base = EngineConfig::deterministic();
    let mut times = std::collections::HashMap::new();
    for (name, setup) in baselines::all(&cluster, &graph, &base) {
        let setup = setup.unwrap_or_else(|e| panic!("{name}: {e}"));
        let engine = RuntimeEngine::new(cluster.clone(), graph.clone(), setup.config);
        let report = engine
            .run(&setup.plan, 2)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        times.insert(name, report.iter_time);
    }
    // The paper's ordering at small scale: veRL (concurrent work) is the
    // strongest baseline.
    let verl = times["veRL"];
    for (name, t) in &times {
        assert!(verl <= t * 1.05, "veRL {verl} vs {name} {t}");
    }
}

#[test]
fn real_beats_every_baseline() {
    let cluster = ClusterSpec::h100(2);
    let actor = ModelSpec::llama3_7b();
    let critic = actor.critic();
    let cfg = RlhfConfig::instruct_gpt(512);
    let exp = Experiment::ppo(cluster.clone(), actor, critic, cfg)
        .with_quick_profile()
        .with_seed(99);
    let graph = exp.graph().clone();

    let planned = exp.plan_auto(&quick_search(6_000)).expect("feasible plan");
    let real_time = exp.run(&planned.plan, 2).unwrap().run.iter_time;

    for (name, setup) in baselines::all(&cluster, &graph, &EngineConfig::default()) {
        let Ok(setup) = setup else { continue };
        let engine = RuntimeEngine::new(cluster.clone(), graph.clone(), setup.config);
        let Ok(report) = engine.run(&setup.plan, 2) else {
            continue;
        };
        assert!(
            real_time < report.iter_time,
            "ReaL {real_time} should beat {name} {}",
            report.iter_time
        );
    }
}

#[test]
fn dschat_is_symmetric_zero3() {
    let cluster = ClusterSpec::h100(1);
    let actor = ModelSpec::llama3_7b();
    let graph = algo::ppo(&actor, &actor.critic(), &RlhfConfig::instruct_gpt(128));
    let s = baselines::dschat(&cluster, &graph, &EngineConfig::deterministic()).unwrap();
    // Symmetric: every call on the full mesh.
    for a in s.plan.assignments() {
        assert_eq!(a.mesh.n_gpus(), 8);
    }
    // All four models ZeRO-sharded; generation is the HF loop (no graphs).
    assert_eq!(s.config.zero3_models.len(), 4);
    assert!(!s.config.cuda_graph);
}

#[test]
fn openrlhf_generation_group_idles_during_training() {
    let cluster = ClusterSpec::h100(4);
    let actor = ModelSpec::llama3_7b();
    let graph = algo::ppo(&actor, &actor.critic(), &RlhfConfig::instruct_gpt(512));
    let s = baselines::openrlhf(&cluster, &graph, &EngineConfig::deterministic()).unwrap();
    let gen_mesh = s.plan.assignment(graph.find("actor_gen").unwrap()).mesh;
    let train_mesh = s.plan.assignment(graph.find("actor_train").unwrap()).mesh;
    assert!(!gen_mesh.overlaps(&train_mesh));

    // Run and check the generation group's GPUs show substantial idle time
    // (they wait for training before the next iteration).
    let engine = RuntimeEngine::new(cluster.clone(), graph.clone(), s.config);
    let report = engine.run(&s.plan, 2).unwrap();
    assert!(report.idle_total > 0.2 * report.total_time * f64::from(cluster.total_gpus()) * 0.25);
}

#[test]
fn beyond_ppo_algorithms_plan_and_run() {
    let cluster = ClusterSpec::h100(2);
    let actor = ModelSpec::llama3_7b();
    let reward = ModelSpec::llama3_7b().critic();
    let cfg = RlhfConfig::instruct_gpt(128);

    let experiments = vec![
        ("dpo", Experiment::dpo(cluster.clone(), actor.clone(), cfg)),
        (
            "remax",
            Experiment::remax(cluster.clone(), actor.clone(), reward.clone(), cfg),
        ),
        (
            "grpo",
            Experiment::grpo(
                cluster.clone(),
                actor.clone(),
                reward.clone(),
                RlhfConfig {
                    grpo_group: 4,
                    ..RlhfConfig::instruct_gpt(32)
                },
            ),
        ),
    ];
    for (name, exp) in experiments {
        let exp = exp.with_quick_profile().with_seed(7);
        let planned = exp
            .plan_auto(&quick_search(2_000))
            .unwrap_or_else(|_| panic!("{name}: no feasible plan"));
        let report = exp
            .run(&planned.plan, 2)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.run.iter_time > 0.0, "{name}");
    }
}

#[test]
fn remax_concurrent_generations_beat_serial_execution() {
    // ReaL's §8.3 ReMax gain comes from running the two generations
    // concurrently; verify a split plan beats a symmetric serial one.
    let cluster = ClusterSpec::h100(2);
    let actor = ModelSpec::llama3_7b();
    let reward = ModelSpec::llama3_7b().critic();
    let exp = Experiment::remax(cluster, actor, reward, RlhfConfig::instruct_gpt(256))
        .with_quick_profile()
        .with_seed(31);
    let heuristic = exp.plan_heuristic();
    let heuristic_time = exp.run(&heuristic, 2).unwrap().run.iter_time;
    let planned = exp.plan_auto(&quick_search(6_000)).expect("feasible plan");
    let searched_time = exp.run(&planned.plan, 2).unwrap().run.iter_time;
    assert!(
        searched_time < heuristic_time,
        "searched {searched_time} vs heuristic {heuristic_time}"
    );
}
