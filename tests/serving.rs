//! Serving-loop integration tests: the seeded trace generator is
//! reproducible, order-stable, and prefix-stable under horizon extension
//! (property-tested); a preempted tenant's iteration trace is bitwise
//! identical to its solo run across a suspend/resume cycle; and a
//! day-long bursty workload with over a thousand arrivals serves to a
//! byte-identical report on every run.

use proptest::prelude::*;
use real_sched::{GraphSet, TenantSpec};
use real_serve::{serve, ArrivalSpec, BurstSpec, TemplateSpec, WorkloadSpec};

fn tenant(name: &str, priority: f64, iterations: usize, batch: u64) -> TenantSpec {
    TenantSpec {
        name: name.into(),
        id: None,
        priority: Some(priority),
        algo: Some("dpo".into()),
        actor: Some("7b".into()),
        critic: None,
        batch: Some(batch),
        graph: None,
        iterations: Some(iterations),
        faults: None,
        elastic: None,
    }
}

fn template(name: &str, priority: f64, iterations: usize, batch: u64) -> TemplateSpec {
    TemplateSpec {
        tenant: tenant(name, priority, iterations, batch),
        weight: None,
    }
}

fn poisson_spec(seed: u64, rate: f64, horizon: f64) -> WorkloadSpec {
    WorkloadSpec {
        nodes: 2,
        seed: Some(seed),
        horizon_secs: Some(horizon),
        arrivals: ArrivalSpec::Poisson {
            rate_per_hour: rate,
            burst: None,
        },
        templates: vec![
            template("a", 1.0, 1, 32),
            TemplateSpec {
                tenant: tenant("b", 2.0, 1, 32),
                weight: Some(3.0),
            },
        ],
        admission: None,
    }
}

proptest! {
    /// Same spec, same arrivals — and extending the horizon appends
    /// without perturbing the prefix (arrival k consumes a fixed number
    /// of draws, in time order).
    #[test]
    fn poisson_stream_is_reproducible_and_prefix_stable(
        seed in 0u64..10_000,
        rate in 20.0..400.0f64,
        horizon in 1800.0..14_400.0f64,
    ) {
        let spec = poisson_spec(seed, rate, horizon);
        let a = spec.arrivals();
        let b = spec.arrivals();
        prop_assert_eq!(&a, &b, "same spec, same stream");
        // Order-stable: sorted instants, sequential ids, in-horizon.
        prop_assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        prop_assert!(a.iter().enumerate().all(|(i, x)| x.id == i as u64));
        prop_assert!(a.iter().all(|x| x.at >= 0.0 && x.at <= horizon));
        // Prefix-stable: the half-horizon stream is a literal prefix.
        let short = poisson_spec(seed, rate, horizon / 2.0).arrivals();
        prop_assert!(short.len() <= a.len());
        prop_assert_eq!(&a[..short.len()], &short[..]);
    }

    /// Burst modulation keeps every guarantee of the base process and
    /// only ever adds arrivals relative to the quiet stream's rate.
    #[test]
    fn bursty_stream_is_reproducible_and_denser(
        seed in 0u64..10_000,
        every in 900.0..3600.0f64,
        frac in 0.05..0.5f64,
    ) {
        let mut spec = poisson_spec(seed, 30.0, 14_400.0);
        let quiet = spec.arrivals();
        spec.arrivals = ArrivalSpec::Poisson {
            rate_per_hour: 30.0,
            burst: Some(BurstSpec {
                every_secs: every,
                secs: every * frac,
                rate_per_hour: 600.0,
            }),
        };
        let a = spec.arrivals();
        let b = spec.arrivals();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        prop_assert!(a.len() >= quiet.len(), "bursts only add arrivals");
    }

    /// Replayed traces come back sorted with forced template indices
    /// following their instants through the sort.
    #[test]
    fn trace_replay_is_order_stable(
        times in proptest::collection::vec(0.0..10_000.0f64, 1..40),
        seed in 0u64..10_000,
    ) {
        let forced: Vec<usize> = times.iter().map(|t| (*t as usize) % 2).collect();
        let mut spec = poisson_spec(seed, 30.0, 10_000.0);
        spec.arrivals = ArrivalSpec::Trace {
            times_secs: times.clone(),
            templates: Some(forced.clone()),
        };
        let arrivals = spec.arrivals();
        prop_assert_eq!(arrivals.len(), times.len());
        prop_assert!(arrivals.windows(2).all(|w| w[0].at <= w[1].at));
        // Every (instant, template) pair of the input survives the sort.
        let mut expect: Vec<(f64, usize)> =
            times.iter().copied().zip(forced).collect();
        expect.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap().then(x.1.cmp(&y.1)));
        let got: Vec<(f64, usize)> =
            arrivals.iter().map(|x| (x.at, x.template)).collect();
        prop_assert_eq!(got, expect);
    }
}

/// The checkpointed-preemption determinism contract: a tenant that was
/// suspended mid-service and resumed later ends with the *bitwise* same
/// per-iteration durations as the same tenant served alone — checkpoints
/// capture the session RNG exactly, and a same-plan resume is free.
#[test]
fn suspend_resume_preserves_the_victims_iteration_trace_bitwise() {
    let mut contended = WorkloadSpec {
        nodes: 2,
        seed: Some(5),
        horizon_secs: Some(100_000.0),
        arrivals: ArrivalSpec::Trace {
            times_secs: vec![0.0, 5.0],
            templates: Some(vec![0, 1]),
        },
        templates: vec![
            template("lowpri", 0.1, 12, 64),
            template("highpri", 10.0, 1, 32),
        ],
        admission: None,
    };
    let served = serve(&contended, &GraphSet::new()).unwrap();
    let victim = &served.tenants[0];
    assert!(
        served.preemptions >= 1 && victim.preemptions >= 1,
        "scenario must actually preempt: {served:?}"
    );
    assert!(victim.segments.len() >= 2, "suspension splits the service");
    assert_eq!(victim.iter_secs.len(), 12);

    // The same template, same arrival id, alone on the cluster.
    contended.arrivals = ArrivalSpec::Trace {
        times_secs: vec![0.0],
        templates: Some(vec![0]),
    };
    let solo = serve(&contended, &GraphSet::new()).unwrap();
    let solo_victim = &solo.tenants[0];
    assert_eq!(solo_victim.preemptions, 0);
    assert_eq!(
        victim.iter_secs, solo_victim.iter_secs,
        "suspend/resume must not perturb the iteration trace"
    );
    assert_eq!(victim.service_secs, solo_victim.service_secs);
}

/// The ISSUE's scale criterion: a seeded day-long bursty workload with
/// over a thousand arrivals completes, conserves its admission
/// accounting, and renders a byte-identical JSON report on a second run.
#[test]
fn day_long_bursty_workload_serves_deterministically() {
    let spec = WorkloadSpec {
        nodes: 2,
        seed: Some(11),
        horizon_secs: Some(86_400.0),
        arrivals: ArrivalSpec::Poisson {
            rate_per_hour: 30.0,
            burst: Some(BurstSpec {
                every_secs: 7200.0,
                secs: 600.0,
                rate_per_hour: 1200.0,
            }),
        },
        templates: vec![
            TemplateSpec {
                tenant: tenant("train", 1.0, 1, 32),
                weight: Some(3.0),
            },
            template("burst", 4.0, 1, 16),
        ],
        admission: None,
    };
    let a = serve(&spec, &GraphSet::new()).unwrap();
    assert!(a.arrivals >= 1000, "day-long bursty trace: {}", a.arrivals);
    assert_eq!(a.admitted + a.queued + a.rejected, a.arrivals);
    assert!(a.tenants.iter().all(|t| t.finish_secs.is_some()
        || matches!(t.decision, real_serve::AdmissionDecision::Rejected { .. })));
    assert!(a.utilization.iter().all(|u| u.leased_gpus <= a.total_gpus));
    assert!(a.makespan_secs.is_finite() && a.makespan_secs > 0.0);

    let b = serve(&spec, &GraphSet::new()).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "same seed, byte-identical day-long report"
    );
}
