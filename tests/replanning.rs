//! Elastic re-planning end-to-end: a seeded permanent crash, a policy that
//! switches the run to a plan searched on the surviving GPUs, and the
//! observability surface the switch leaves behind.

use real_core::prelude::*;

/// One h100 node running quick-profiled PPO, with a FaultPlan that kills
/// GPU 3 mid-run (during the second iteration's generation, once every
/// model has an established parameter layout) and never restarts it within
/// the run's horizon.
fn faulted_experiment(batch: u64) -> Experiment {
    let engine = EngineConfig {
        seed: 17,
        trace_capacity: 8192,
        fault_plan: Some(FaultPlan::new(23).crash(3, 12.0, 1.0e6)),
        ..EngineConfig::default()
    };
    Experiment::ppo(
        ClusterSpec::h100(1),
        ModelSpec::llama3_7b(),
        ModelSpec::llama3_7b().critic(),
        RlhfConfig::instruct_gpt(batch),
    )
    .with_quick_profile()
    .with_seed(17)
    .with_engine_config(engine)
}

fn quick_policy() -> ReplanPolicy {
    ReplanPolicy::new().with_search_steps(300)
}

#[test]
fn replan_beats_retry_only_after_permanent_crash() {
    let exp = faulted_experiment(32);
    let plan = exp.plan_heuristic();

    // Retry-only: the run waits out the (effectively infinite) restart.
    let waited = exp.run(&plan, 2).expect("plan fits");
    assert!(waited.run.total_time > 1.0e6, "{}", waited.run.total_time);
    assert!(waited.run.replan.is_empty());

    // With a policy: one DeadWorker trigger, one committed switch, and a
    // strictly higher simulated throughput.
    let exp = faulted_experiment(32).with_replan_policy(quick_policy());
    let replanned = exp.run(&plan, 2).expect("plan fits");
    assert_eq!(
        replanned.run.replan.switches, 1,
        "{:?}",
        replanned.run.replan
    );
    assert!(matches!(
        replanned.run.replan.events[0].reason,
        ReplanReason::DeadWorker { gpu: 3 }
    ));
    assert!(
        replanned.run.total_time < waited.run.total_time / 100.0,
        "replanned {} vs waited {}",
        replanned.run.total_time,
        waited.run.total_time
    );
    assert!(replanned.tokens_per_sec > waited.tokens_per_sec);

    // The switch is visible in the Chrome trace (decision lane) …
    let stream = exp.event_stream(&replanned);
    stream.check_invariants().unwrap();
    let chrome = real_core::real_obs::chrome::to_chrome_string(&stream);
    assert!(chrome.contains("dead-worker@gpu3"), "decision lane missing");
    assert!(chrome.contains("switch prologue"), "prologue span missing");

    // … and in the metrics registry.
    let snap = exp.metrics(&replanned, None).snapshot();
    let switches = snap
        .metrics
        .iter()
        .find(|e| e.name == "runtime/replan_switches")
        .expect("runtime/replan_switches present");
    match &switches.value {
        real_core::real_obs::MetricValue::Counter(v) => assert_eq!(*v, 1.0),
        other => panic!("expected a counter, got {other:?}"),
    }
}

#[test]
fn replanned_experiment_is_deterministic() {
    let run = || {
        let exp = faulted_experiment(32).with_replan_policy(quick_policy());
        let plan = exp.plan_heuristic();
        let report = exp.run(&plan, 1).expect("plan fits");
        (
            report.run.total_time,
            serde_json::to_string(&report.run.replan).unwrap(),
        )
    };
    let (time_a, replan_a) = run();
    let (time_b, replan_b) = run();
    assert_eq!(time_a, time_b);
    assert_eq!(replan_a, replan_b);
}

#[test]
fn replan_policy_without_faults_is_inert() {
    let exp = Experiment::ppo(
        ClusterSpec::h100(1),
        ModelSpec::llama3_7b(),
        ModelSpec::llama3_7b().critic(),
        RlhfConfig::instruct_gpt(32),
    )
    .with_quick_profile()
    .with_seed(17);
    let plan = exp.plan_heuristic();
    let plain = exp.run(&plan, 1).unwrap();
    let with_policy = exp
        .clone()
        .with_replan_policy(quick_policy())
        .run(&plan, 1)
        .unwrap();
    assert_eq!(plain.run.iter_time, with_policy.run.iter_time);
    assert_eq!(plain.run.total_time, with_policy.run.total_time);
    assert!(with_policy.run.replan.is_empty());
}
