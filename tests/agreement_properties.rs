//! Property-style integration tests: over randomly drawn symmetric plans,
//! the estimator and the runtime engine must agree within a calibrated
//! bound, memory accounting must be consistent, and reallocation must be
//! charged exactly when layouts change.

use real_core::prelude::*;
use real_core::real_util::DeterministicRng;

fn setup(batch: u64) -> (ClusterSpec, DataflowGraph, Estimator) {
    let cluster = ClusterSpec::h100(2);
    let actor = ModelSpec::llama3_7b();
    let critic = actor.critic();
    let graph = algo::ppo(&actor, &critic, &algo::RlhfConfig::instruct_gpt(batch));
    let mut profiler = Profiler::new(cluster.clone(), ProfileConfig::quick(), 3);
    let profiles = vec![profiler.profile(&actor), profiler.profile(&critic)];
    let est = Estimator::new(cluster.clone(), graph.clone(), profiles).unwrap();
    (cluster, graph, est)
}

/// Draws a random valid assignment for a call from the pruned option space.
fn random_plan(
    rng: &mut DeterministicRng,
    space: &SearchSpace,
    graph: &DataflowGraph,
    cluster: &ClusterSpec,
) -> ExecutionPlan {
    let assignments: Vec<CallAssignment> = (0..graph.n_calls())
        .map(|c| {
            let opts = space.options(c);
            opts[(rng.next_u64() % opts.len() as u64) as usize]
        })
        .collect();
    ExecutionPlan::new(graph, cluster, assignments).expect("options validate")
}

#[test]
fn estimator_and_runtime_agree_on_random_feasible_plans() {
    let (cluster, graph, est) = setup(256);
    let space = SearchSpace::build(&cluster, &graph, PruneLevel::Aggressive);
    let engine = RuntimeEngine::new(
        cluster.clone(),
        graph.clone(),
        EngineConfig::deterministic(),
    );
    let mut rng = DeterministicRng::from_seed(2024);

    let mut checked = 0;
    let mut attempts = 0;
    while checked < 8 && attempts < 200 {
        attempts += 1;
        let plan = random_plan(&mut rng, &space, &graph, &cluster);
        if !est.mem_ok(&plan) {
            continue;
        }
        let estimated = est.time_cost(&plan);
        let measured = engine
            .run(&plan, 2)
            .expect("estimator said it fits")
            .iter_time;
        let rel = ((estimated - measured) / measured).abs();
        // Random plans include pathological shapes the closed forms track
        // less tightly than searched/heuristic plans; allow 40%.
        assert!(
            rel < 0.40,
            "plan diverged {rel:.2}: est {estimated:.1} vs run {measured:.1}\n{}",
            plan.render(&graph)
        );
        checked += 1;
    }
    assert!(checked >= 8, "found only {checked} feasible random plans");
}

#[test]
fn memcheck_is_consistent_between_estimator_and_engine() {
    let (cluster, graph, est) = setup(128);
    let space = SearchSpace::build(&cluster, &graph, PruneLevel::Moderate);
    let engine = RuntimeEngine::new(
        cluster.clone(),
        graph.clone(),
        EngineConfig::deterministic(),
    );
    let mut rng = DeterministicRng::from_seed(7);
    for _ in 0..40 {
        let plan = random_plan(&mut rng, &space, &graph, &cluster);
        let est_ok = est.mem_ok(&plan);
        let run = engine.run(&plan, 1);
        // Engine (no zero3/dist-optim models) must agree exactly with the
        // estimator's MaxMem verdict.
        assert_eq!(
            est_ok,
            run.is_ok(),
            "memcheck mismatch:\n{}",
            plan.render(&graph)
        );
    }
}

#[test]
fn realloc_charged_iff_layouts_differ() {
    let (cluster, graph, est) = setup(128);
    let space = SearchSpace::build(&cluster, &graph, PruneLevel::Aggressive);
    let engine = RuntimeEngine::new(
        cluster.clone(),
        graph.clone(),
        EngineConfig::deterministic(),
    );
    let mut rng = DeterministicRng::from_seed(99);

    let mut seen_with = false;
    let mut seen_without = false;
    let mut attempts = 0;
    while (!seen_with || !seen_without) && attempts < 300 {
        attempts += 1;
        let plan = random_plan(&mut rng, &space, &graph, &cluster);
        if !est.mem_ok(&plan) {
            continue;
        }
        let mut layouts_change = false;
        for model in graph.model_names() {
            let calls = graph.calls_of_model(model);
            for w in calls.windows(2) {
                if plan.assignment(w[0]) != plan.assignment(w[1]) {
                    layouts_change = true;
                }
            }
        }
        let report = engine.run(&plan, 2).expect("fits");
        let realloc = report
            .category_totals
            .iter()
            .find(|(c, _)| *c == Category::Realloc)
            .unwrap()
            .1;
        if layouts_change {
            assert!(realloc > 0.0, "layout change must charge reallocation");
            seen_with = true;
        } else {
            assert_eq!(realloc, 0.0, "no layout change, no reallocation");
            seen_without = true;
        }
    }
    assert!(seen_with, "never drew a plan with a layout change");
    // Symmetric plans (no change) are rare random draws; tolerate missing.
}

#[test]
fn iteration_time_is_stable_across_iteration_counts() {
    let (cluster, graph, est) = setup(128);
    let space = SearchSpace::build(&cluster, &graph, PruneLevel::Aggressive);
    let engine = RuntimeEngine::new(
        cluster.clone(),
        graph.clone(),
        EngineConfig::deterministic(),
    );
    let mut rng = DeterministicRng::from_seed(5);
    let plan = loop {
        let p = random_plan(&mut rng, &space, &graph, &cluster);
        if est.mem_ok(&p) {
            break p;
        }
    };
    let t2 = engine.run(&plan, 2).unwrap().iter_time;
    let t4 = engine.run(&plan, 4).unwrap().iter_time;
    let rel = ((t2 - t4) / t4).abs();
    assert!(
        rel < 0.05,
        "steady-state iteration time unstable: {t2} vs {t4}"
    );
}
