//! Profiling integration tests: critical-path and phase-attribution
//! invariants over randomly generated span streams, a golden
//! [`ProfileReport`] JSON fixture, and cross-run determinism of the
//! profile an experiment produces.

use proptest::prelude::*;
use real_core::prelude::*;
use real_core::real_obs::critpath::{makespan, reconstruct_spans, CriticalPath, EPS};
use real_core::real_obs::profile::attribute_phases;
use real_core::real_obs::{EventStream, LaneId, ProfileReport};

/// Categories mixing phase-bearing and kernel-level spans.
const CATS: &[&str] = &[
    "call/gen",
    "call/train",
    "call/inf",
    "realloc",
    "transfer",
    "backoff",
    "compute",
];

/// Builds a well-formed stream from per-lane `(gap, dur, nest, cat)` walks:
/// each tuple appends one top-level span after `gap` idle seconds, with a
/// nested child strictly inside it.
fn build_stream(lanes: &[Vec<(f64, f64, f64, usize)>]) -> EventStream {
    let mut s = EventStream::with_capacity(1 << 14);
    for (li, spans) in lanes.iter().enumerate() {
        let lane = LaneId::gpu(0, li as u32);
        let mut t = 0.0;
        for &(gap, dur, nest, cat) in spans {
            let start = t + gap;
            let end = start + dur;
            s.begin(lane, "outer", CATS[cat % CATS.len()], start);
            let c0 = start + 0.25 * nest * dur;
            let c1 = start + (0.25 + 0.5 * nest) * dur;
            s.span(lane, "inner", CATS[(cat + 1) % CATS.len()], c0, c1);
            s.end(lane, end);
            t = end;
        }
    }
    s
}

proptest! {
    #[test]
    fn critical_path_tiles_the_makespan(
        lanes in proptest::collection::vec(
            proptest::collection::vec(
                (0.0..2.0f64, 0.01..4.0f64, 0.1..0.9f64, 0usize..7),
                0..6,
            ),
            1..4,
        )
    ) {
        let stream = build_stream(&lanes);
        prop_assert!(stream.check_invariants().is_ok());
        let spans = reconstruct_spans(&stream);
        let total = makespan(&spans);
        let cp = CriticalPath::extract(&spans, total);

        // The path never gates more time than the run took, and span +
        // wait seconds conserve the makespan exactly.
        prop_assert!(cp.span_seconds <= total + 1e-6);
        prop_assert!(cp.wait_seconds >= -1e-9);
        prop_assert!((cp.span_seconds + cp.wait_seconds - total).abs() < 1e-6);

        // Segments tile [0, makespan] with no gaps or overlaps.
        if !cp.segments.is_empty() {
            prop_assert!(cp.segments[0].start.abs() < 1e-9);
            prop_assert!((cp.segments.last().unwrap().end - total).abs() < 1e-9);
            for w in cp.segments.windows(2) {
                prop_assert!((w[0].end - w[1].start).abs() < 1e-9);
            }
            for seg in &cp.segments {
                prop_assert!(seg.end >= seg.start - EPS);
            }
        }
    }

    #[test]
    fn phase_attribution_conserves_the_makespan(
        lanes in proptest::collection::vec(
            proptest::collection::vec(
                (0.0..2.0f64, 0.01..4.0f64, 0.1..0.9f64, 0usize..7),
                0..6,
            ),
            1..4,
        )
    ) {
        let stream = build_stream(&lanes);
        let spans = reconstruct_spans(&stream);
        let total = makespan(&spans);
        let phases = attribute_phases(&spans, total);
        let sum: f64 = phases.iter().map(|p| p.seconds).sum();
        prop_assert!((sum - total).abs() < 1e-6, "phases sum {sum} vs makespan {total}");
        for p in &phases {
            prop_assert!(p.seconds >= -1e-9, "negative phase {:?}", p.phase);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&p.share));
        }
    }
}

/// The golden fixture pins the exact ProfileReport JSON for a small
/// hand-built stream: field order, float formatting, phase ordering, and
/// critical-path ranking are all part of the contract (`real profile
/// --check` diffs reports across commits). Regenerate deliberately with
/// `BLESS=1 cargo test -p real-core --test profiling`.
#[test]
fn profile_report_matches_golden_fixture() {
    let mut s = EventStream::with_capacity(64);
    let master = LaneId::master();
    s.set_lane_name(master, "master", "ctl");
    s.span(master, "actor_gen#0", "call/gen", 0.0, 4.0);
    s.span(master, "actor_train#0", "call/train", 4.0, 7.0);
    let gpu = LaneId::gpu(0, 0);
    s.set_lane_name(gpu, "node0", "gpu0");
    s.span(gpu, "fwd", "compute", 0.5, 3.0);
    s.span(gpu, "grad", "compute", 4.0, 5.5);
    s.span(gpu, "allreduce", "dp-comm", 5.0, 6.5);
    s.span(gpu, "realloc", "realloc", 6.5, 7.0);
    let report = ProfileReport::from_stream(&s, 5);
    let json = serde_json::to_string_pretty(&report).unwrap();

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/profile_report.json"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &json).unwrap();
    }
    let expected = std::fs::read_to_string(path).unwrap();
    assert_eq!(json, expected, "fixture drifted; BLESS=1 to regenerate");
}

#[test]
fn same_seed_runs_produce_byte_identical_profiles() {
    let profile_once = || {
        let cluster = ClusterSpec::h100(1);
        let actor = ModelSpec::llama3_7b();
        let critic = actor.critic();
        let exp = Experiment::ppo(cluster, actor, critic, RlhfConfig::instruct_gpt(32))
            .with_seed(7)
            .with_quick_profile()
            .with_engine_config(EngineConfig {
                trace_capacity: 500_000,
                ..EngineConfig::default()
            });
        let plan = exp.plan_heuristic();
        let report = exp.run(&plan, 1).expect("heuristic plan runs");
        let (est, _) = exp.prepare();
        serde_json::to_string_pretty(&exp.profile_report(&report, &est, 10)).unwrap()
    };
    let a = profile_once();
    let b = profile_once();
    assert_eq!(a, b, "same-seed profiles must be byte-identical");
}

#[test]
fn experiment_profile_attributes_and_reports_the_gap() {
    let cluster = ClusterSpec::h100(1);
    let actor = ModelSpec::llama3_7b();
    let critic = actor.critic();
    let exp = Experiment::ppo(cluster, actor, critic, RlhfConfig::instruct_gpt(32))
        .with_seed(3)
        .with_quick_profile()
        .with_engine_config(EngineConfig {
            trace_capacity: 500_000,
            ..EngineConfig::default()
        });
    let plan = exp.plan_heuristic();
    let report = exp.run(&plan, 1).expect("heuristic plan runs");
    let (est, _) = exp.prepare();
    let profile = exp.profile_report(&report, &est, 10);

    assert!(
        profile.attributed_fraction() >= 0.95,
        "only {:.1}% of the makespan attributed",
        profile.attributed_fraction() * 100.0
    );
    assert!((profile.makespan - report.run.total_time).abs() < 1e-6);
    // Every call shows up in the Fig. 12-style gap table.
    assert_eq!(profile.estimator_gap.len(), exp.graph().n_calls());
    // Critical path is non-trivial and bounded by the makespan.
    assert!(!profile.critical_path.is_empty());
    assert!(profile.crit_span_seconds <= profile.makespan + 1e-6);
}
