//! Integration tests for the execution-plan generator: search quality,
//! pruning behaviour, and brute-force agreement (§8.2 claims as tests).

use real_core::prelude::*;
use std::time::Duration;

fn setup(nodes: u32, batch: u64) -> (Estimator, SearchSpace, Experiment) {
    let exp = Experiment::ppo(
        ClusterSpec::h100(nodes),
        ModelSpec::llama3_7b(),
        ModelSpec::llama3_7b().critic(),
        RlhfConfig::instruct_gpt(batch),
    )
    .with_quick_profile()
    .with_seed(77);
    let (est, _) = exp.prepare();
    let space = exp.search_space();
    (est, space, exp)
}

#[test]
fn mcmc_reaches_near_brute_force_optimum() {
    // Fig. 15: the searched plan reaches >= 95% of the reference optimum.
    let (est, space, _) = setup(1, 64);
    let brute = brute_force(
        &est,
        &space,
        &BruteConfig {
            top_k: 5,
            time_limit: Duration::from_secs(120),
        },
    );
    assert!(brute.exhaustive, "5^6 plans must enumerate");
    let cfg = McmcConfig {
        max_steps: 5_000,
        time_limit: Duration::from_secs(60),
        record_trace: false,
        ..McmcConfig::default()
    };
    let result = search(&est, &space, &cfg);
    // MCMC searches the full pruned space: it may beat the truncated
    // reference; it must reach at least 95% of it.
    assert!(
        result.best_time_cost <= brute.best_time_cost / 0.95,
        "mcmc {} vs brute {}",
        result.best_time_cost,
        brute.best_time_cost
    );
}

#[test]
fn pruning_levels_trade_space_for_quality() {
    // Fig. 14's mechanism: tighter pruning shrinks the space.
    let exp = Experiment::ppo(
        ClusterSpec::h100(4),
        ModelSpec::llama3_7b(),
        ModelSpec::llama3_7b().critic(),
        RlhfConfig::instruct_gpt(512),
    )
    .with_quick_profile();
    let sizes: Vec<f64> = [
        PruneLevel::Aggressive,
        PruneLevel::Moderate,
        PruneLevel::Light,
    ]
    .into_iter()
    .map(|level| {
        let e = exp.clone().with_prune_level(level);
        e.search_space().log10_size()
    })
    .collect();
    assert!(sizes[0] < sizes[1], "aggressive < moderate");
    assert!(sizes[1] < sizes[2], "moderate < light");
    // The paper's scale claim: even a two-node cluster's unpruned space is
    // astronomically large.
    assert!(sizes[2] > 10.0, "log10 size {}", sizes[2]);
}

#[test]
fn searched_plans_use_parameter_reallocation() {
    // The headline mechanism: for the 7B+7B case the searched plan gives at
    // least one model different layouts for different calls (requiring a
    // reallocation at runtime).
    let (est, space, exp) = setup(2, 512);
    let cfg = McmcConfig {
        max_steps: 8_000,
        time_limit: Duration::from_secs(60),
        record_trace: false,
        ..McmcConfig::default()
    };
    let result = search(&est, &space, &cfg);
    assert!(result.feasible);
    let graph = exp.graph();
    let plan = &result.best_plan;
    let mut any_realloc = false;
    for model in graph.model_names() {
        let calls = graph.calls_of_model(model);
        for w in calls.windows(2) {
            if plan.assignment(w[0]) != plan.assignment(w[1]) {
                any_realloc = true;
            }
        }
    }
    assert!(
        any_realloc,
        "searched plan should exploit parameter reallocation"
    );
    // And the runtime engine must charge reallocation time for it.
    let report = exp.run(plan, 2).unwrap();
    let realloc = report
        .run
        .category_totals
        .iter()
        .find(|(c, _)| *c == Category::Realloc)
        .unwrap()
        .1;
    assert!(realloc > 0.0);
    // The paper's Fig. 11 note: the broadcasts are minor next to compute.
    let compute = report
        .run
        .category_totals
        .iter()
        .find(|(c, _)| *c == Category::Compute)
        .unwrap()
        .1;
    assert!(
        realloc < 0.1 * compute,
        "realloc {realloc} vs compute {compute}"
    );
}

#[test]
fn parallel_chains_match_or_beat_single_chain() {
    let (est, space, _) = setup(1, 128);
    let cfg = McmcConfig {
        max_steps: 1_500,
        time_limit: Duration::from_secs(60),
        record_trace: false,
        ..McmcConfig::default()
    };
    let single = search(&est, &space, &cfg);
    let multi = parallel_search(&est, &space, &cfg, 3);
    assert!(multi.best_time_cost <= single.best_time_cost + 1e-9);
    assert!(multi.feasible);
}

#[test]
fn greedy_seed_is_never_better_than_search_output() {
    let (est, space, _) = setup(2, 512);
    let greedy = greedy_plan(&est, &space);
    let cfg = McmcConfig {
        max_steps: 3_000,
        time_limit: Duration::from_secs(60),
        record_trace: false,
        ..McmcConfig::default()
    };
    let result = search(&est, &space, &cfg);
    assert!(est.cost(&result.best_plan) <= est.cost(&greedy) + 1e-9);
}

#[test]
fn heuristic_plan_is_feasible_at_every_weak_scaling_point() {
    for (nodes, size, batch) in [
        (2u32, "7b", 512u64),
        (4, "13b", 1024),
        (8, "34b", 2048),
        (16, "70b", 4096),
    ] {
        let exp = Experiment::ppo(
            ClusterSpec::h100(nodes),
            ModelSpec::by_size(size).unwrap(),
            ModelSpec::llama3_7b().critic(),
            RlhfConfig::instruct_gpt(batch),
        )
        .with_quick_profile();
        let (est, _) = exp.prepare();
        let plan = exp.plan_heuristic();
        assert!(
            est.mem_ok(&plan),
            "{size} heuristic should fit {nodes} nodes"
        );
    }
}
