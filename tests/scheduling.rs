//! Integration tests for the multi-tenant scheduler: determinism, fault
//! isolation, oversubscribed time-sharing, and elastic rebalancing.
//!
//! Registered as the `scheduling` test target of `real-sched` (see
//! `crates/sched/Cargo.toml`), so `cargo test -p real-sched` covers the
//! whole admission → plan → joint-run pipeline.

use real_cluster::ClusterSpec;
use real_core::{Experiment, Tenant};
use real_dataflow::algo::RlhfConfig;
use real_model::ModelSpec;
use real_runtime::{ReplanPolicy, RunReport};
use real_sched::{obs, SchedConfig, SchedSpec, Scheduler};
use real_sim::{FaultEvent, FaultPlan};

fn quick_config() -> SchedConfig {
    SchedConfig {
        refine_steps: 200,
        ..SchedConfig::default()
    }
}

fn dpo_tenant(cluster: &ClusterSpec, name: &str, id: u64, batch: u64) -> Tenant {
    let exp = Experiment::dpo(
        cluster.clone(),
        ModelSpec::llama3_7b(),
        RlhfConfig::instruct_gpt(batch),
    )
    .with_quick_profile();
    Tenant::new(name, id, exp)
}

fn ppo_13b_tenant(cluster: &ClusterSpec, name: &str, id: u64) -> Tenant {
    let exp = Experiment::ppo(
        cluster.clone(),
        ModelSpec::llama3_13b(),
        ModelSpec::llama3_13b().critic(),
        RlhfConfig::instruct_gpt(32),
    )
    .with_quick_profile();
    Tenant::new(name, id, exp).with_iterations(1)
}

/// Bitwise comparison of everything a tenant observes about its own run.
fn assert_reports_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
    assert_eq!(a.iter_time.to_bits(), b.iter_time.to_bits());
    assert_eq!(a.timings.len(), b.timings.len());
    for (x, y) in a.timings.iter().zip(&b.timings) {
        assert_eq!(x.call_name, y.call_name);
        assert_eq!(x.start.to_bits(), y.start.to_bits());
        assert_eq!(x.end.to_bits(), y.end.to_bits());
    }
    assert_eq!(a.category_totals.len(), b.category_totals.len());
    for ((ca, va), (cb, vb)) in a.category_totals.iter().zip(&b.category_totals) {
        assert_eq!(ca, cb);
        assert_eq!(va.to_bits(), vb.to_bits());
    }
    assert_eq!(a.idle_total.to_bits(), b.idle_total.to_bits());
    assert_eq!(a.mem_peak, b.mem_peak);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.trace.events(), b.trace.events());
}

#[test]
fn seeded_multi_tenant_runs_replay_bit_identically() {
    let cluster = ClusterSpec::h100(2);
    let tenants = vec![
        dpo_tenant(&cluster, "prod", 0, 64).with_priority(2.0),
        dpo_tenant(&cluster, "dev", 1, 32),
    ];
    let sched = Scheduler::new(cluster).with_config(SchedConfig {
        seed: 11,
        trace_capacity: 50_000,
        ..quick_config()
    });
    let first = sched.run(&tenants).unwrap();
    let second = sched.run(&tenants).unwrap();
    assert_eq!(first.report, second.report);
    for (a, b) in first.reports.iter().zip(&second.reports) {
        assert_reports_identical(a, b);
    }
    // Traces replay too, not just the scalar summaries.
    assert!(first.reports.iter().any(|r| !r.trace.events().is_empty()));
}

#[test]
fn cotenant_report_is_byte_identical_to_solo_run_on_same_mesh() {
    // Satellite regression: admitting a co-tenant on the other node must
    // not change tenant `prod`'s report in any bit. Runs the scheduled
    // 2-tenant workload, then replays tenant `prod` alone on the exact
    // mesh the scheduler gave it, with the same seed.
    let cluster = ClusterSpec::h100(2);
    let tenants = vec![
        dpo_tenant(&cluster, "prod", 0, 64),
        dpo_tenant(&cluster, "dev", 1, 32),
    ];
    let sched = Scheduler::new(cluster.clone()).with_config(SchedConfig {
        seed: 7,
        ..quick_config()
    });
    let both = sched.run(&tenants).unwrap();
    assert!(!both.schedule.oversubscribed);

    // Solo replay: same tenant, same id, same mesh — build a 1-tenant run
    // via run_multi on the allocation the scheduler picked.
    let placed = &both.schedule.tenants[0];
    let exp = tenants[0].experiment();
    let solo_run = real_runtime::TenantRun {
        id: tenants[0].id(),
        name: tenants[0].name().to_string(),
        graph: exp.graph().clone(),
        plan: placed.plan.clone(),
        config: exp.engine_config().clone(),
        iterations: tenants[0].iterations(),
        allocation: placed.allocation.gpus().collect(),
        solo_step_secs: placed.solo_step_secs,
        elastic: None,
    };
    let solo = real_runtime::run_multi(&cluster, &[solo_run], 7).unwrap();
    assert_reports_identical(&both.reports[0], &solo[0]);
}

#[test]
fn faulted_tenant_crash_leaves_cotenant_reports_unchanged() {
    // Fault domains: crash tenant `dev`'s workers mid-run; tenant `prod`'s
    // report (timeline, RNG stream, totals) must not move by a bit.
    let cluster = ClusterSpec::h100(2);
    let clean = |faults: Option<FaultPlan>| {
        let mut exp = Experiment::dpo(
            cluster.clone(),
            ModelSpec::llama3_7b(),
            RlhfConfig::instruct_gpt(32),
        )
        .with_quick_profile();
        if let Some(plan) = faults {
            exp = exp.with_fault_plan(plan);
        }
        vec![
            dpo_tenant(&cluster, "prod", 0, 64),
            Tenant::new("dev", 1, exp),
        ]
    };
    let sched = Scheduler::new(cluster.clone()).with_config(SchedConfig {
        seed: 5,
        ..quick_config()
    });

    // Find dev's allocation first so the crash provably lands inside its
    // fault domain.
    let baseline = sched.run(&clean(None)).unwrap();
    let dev_gpu = baseline.schedule.tenants[1]
        .allocation
        .gpus()
        .next()
        .unwrap();
    let faults = FaultPlan {
        seed: 0,
        events: vec![FaultEvent::Crash {
            gpu: dev_gpu.0,
            at: 1.0,
            restart_after: 30.0,
        }],
    };
    let faulted = sched.run(&clean(Some(faults))).unwrap();

    // The crash registered in dev's fault domain...
    assert_eq!(faulted.reports[1].faults.injected, 1);
    // ...and prod's run is untouched, bit for bit.
    assert_reports_identical(&baseline.reports[0], &faulted.reports[0]);
}

#[test]
fn oversubscribed_tenants_time_share_without_deadlock() {
    // PPO(13B+13B) fits only on a full node, so two such tenants on one
    // node cannot split disjointly; the scheduler must fall back to
    // time-sharing and the run must complete.
    let cluster = ClusterSpec::h100(1);
    let tenants = vec![
        ppo_13b_tenant(&cluster, "a", 0),
        ppo_13b_tenant(&cluster, "b", 1),
    ];
    let sched = Scheduler::new(cluster).with_config(SchedConfig {
        refine_steps: 0,
        ..SchedConfig::default()
    });
    let outcome = sched.run(&tenants).unwrap();
    assert!(outcome.schedule.oversubscribed);
    assert!(outcome.report.oversubscribed);
    for report in &outcome.reports {
        assert_eq!(report.iterations, 1);
        assert!(report.total_time > 0.0);
    }
}

#[test]
fn freed_capacity_is_offered_to_the_elastic_survivor() {
    // Tenant `short` finishes after 1 iteration; its node joins the free
    // pool and must be offered to `long` through the re-plan gate.
    let cluster = ClusterSpec::h100(2);
    let policy = ReplanPolicy {
        min_speedup: 1.0,
        min_benefit_ratio: 0.0,
        search_steps: 500,
        ..ReplanPolicy::default()
    };
    let long = {
        let exp = Experiment::dpo(
            cluster.clone(),
            ModelSpec::llama3_7b(),
            RlhfConfig::instruct_gpt(64),
        )
        .with_quick_profile()
        .with_replan_policy(policy);
        Tenant::new("long", 0, exp).with_iterations(4)
    };
    let short = dpo_tenant(&cluster, "short", 1, 32).with_iterations(1);
    let sched = Scheduler::new(cluster).with_config(SchedConfig {
        seed: 3,
        ..quick_config()
    });
    let outcome = sched.run(&[long, short]).unwrap();
    let long_report = &outcome.reports[0];
    assert!(
        long_report.replan.evaluations >= 1,
        "the freed node was never offered: {:?}",
        long_report.replan
    );
    assert_eq!(
        outcome.report.tenants[0].reallocs,
        long_report.replan.switches
    );
}

#[test]
fn example_spec_parses_plans_and_reports() {
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/tenants.json"
    ))
    .unwrap();
    let spec: SchedSpec = serde_json::from_str(&json).unwrap();
    assert!(spec.tenants.len() >= 3, "example must pack >= 3 tenants");
    let (cluster, tenants) = spec.build().unwrap();
    let sched = Scheduler::new(cluster).with_config(SchedConfig {
        seed: spec.seed(),
        refine_steps: 100,
        ..SchedConfig::default()
    });
    let schedule = sched.plan(&tenants).unwrap();
    assert_eq!(schedule.tenants.len(), spec.tenants.len());
    let rendered = schedule.render();
    for t in &spec.tenants {
        assert!(rendered.contains(&t.name), "schedule lists `{}`", t.name);
    }
}

#[test]
fn sched_observability_covers_every_tenant() {
    let cluster = ClusterSpec::h100(2);
    let tenants = vec![
        dpo_tenant(&cluster, "prod", 0, 64),
        dpo_tenant(&cluster, "dev", 1, 32),
    ];
    let sched = Scheduler::new(cluster).with_config(SchedConfig {
        trace_capacity: 50_000,
        ..quick_config()
    });
    let outcome = sched.run(&tenants).unwrap();

    let stream = obs::sched_event_stream(&outcome.schedule, &outcome.reports);
    stream.check_invariants().unwrap();
    let procs: Vec<&str> = stream.process_names().map(|(_, name)| name).collect();
    assert!(procs.contains(&"tenant:prod") && procs.contains(&"tenant:dev"));
    assert!(!stream.events().is_empty());

    let metrics = obs::sched_metrics(&outcome.report);
    assert!(metrics.get("sched/tenants", &[]).is_some());
    assert!(metrics.get("sched/fairness_index", &[]).is_some());
    assert!(metrics
        .get("sched/stretch", &[("tenant", "prod")])
        .is_some());
}
