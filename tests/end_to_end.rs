//! End-to-end integration: profile → search → execute, across all crates.

use real_core::prelude::*;
use std::time::Duration;

fn quick_search(steps: u64) -> McmcConfig {
    McmcConfig {
        max_steps: steps,
        time_limit: Duration::from_secs(30),
        ..McmcConfig::default()
    }
}

fn experiment(nodes: u32, batch: u64) -> Experiment {
    Experiment::ppo(
        ClusterSpec::h100(nodes),
        ModelSpec::llama3_7b(),
        ModelSpec::llama3_7b().critic(),
        RlhfConfig::instruct_gpt(batch),
    )
    .with_quick_profile()
    .with_seed(1234)
}

#[test]
fn auto_planned_ppo_runs_and_reports() {
    let exp = experiment(1, 64);
    let planned = exp.plan_auto(&quick_search(2_000)).expect("feasible plan");
    let report = exp.run(&planned.plan, 3).expect("plan fits");
    assert_eq!(report.run.iterations, 3);
    assert_eq!(report.run.timings.len(), 18);
    assert!(report.run.iter_time > 0.0);
    assert!(report.tokens_per_sec > 0.0);
    assert_eq!(report.tokens_per_iter, 64 * 2048);
    // Category totals are all non-negative and compute dominates.
    let compute = report
        .run
        .category_totals
        .iter()
        .find(|(c, _)| *c == Category::Compute)
        .unwrap()
        .1;
    for &(_, secs) in &report.run.category_totals {
        assert!(secs >= 0.0);
        assert!(secs <= compute * 1.01 + report.run.total_time);
    }
}

#[test]
fn searched_plan_beats_heuristic_end_to_end() {
    let exp = experiment(2, 512);
    let planned = exp.plan_auto(&quick_search(6_000)).expect("feasible plan");
    let heuristic = exp.plan_heuristic();
    let searched_time = exp.run(&planned.plan, 2).unwrap().run.iter_time;
    let heuristic_time = exp.run(&heuristic, 2).unwrap().run.iter_time;
    assert!(
        searched_time < heuristic_time,
        "searched {searched_time} vs heuristic {heuristic_time}"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let exp = experiment(1, 64);
        let planned = exp.plan_auto(&quick_search(1_000)).expect("feasible plan");
        let report = exp.run(&planned.plan, 2).expect("plan fits");
        (planned.plan, report.run.iter_time)
    };
    let (plan_a, time_a) = run();
    let (plan_b, time_b) = run();
    assert_eq!(plan_a, plan_b);
    assert_eq!(time_a, time_b);
}

#[test]
fn generation_dominates_ppo_iterations() {
    // Fig. 1 / Table 6: under a symmetric plan, generation is the longest
    // call of the iteration.
    let exp = experiment(1, 128);
    let heuristic = exp.plan_heuristic();
    let report = exp.run(&heuristic, 2).unwrap();
    let gen = report.run.call_mean("actor_gen").unwrap();
    for other in ["reward_inf", "ref_inf", "critic_inf", "critic_train"] {
        assert!(
            gen > report.run.call_mean(other).unwrap(),
            "{other} exceeded generation"
        );
    }
}

#[test]
fn estimator_matches_runtime_within_paper_bound() {
    // Fig. 12's claim as a test: relative differences consistently below
    // 25%, with plan ordering preserved.
    let exp = experiment(2, 512);
    let (est, _) = exp.prepare();
    let planned = exp.plan_auto(&quick_search(4_000)).expect("feasible plan");
    let heuristic = exp.plan_heuristic();

    let mut pairs = Vec::new();
    for plan in [&planned.plan, &heuristic] {
        let estimated = est.time_cost(plan);
        let measured = exp.run(plan, 2).unwrap().run.iter_time;
        let rel = ((estimated - measured) / measured).abs();
        assert!(rel < 0.25, "relative error {rel}");
        pairs.push((estimated, measured));
    }
    assert_eq!(
        pairs[0].0 < pairs[1].0,
        pairs[0].1 < pairs[1].1,
        "estimator must preserve plan ordering"
    );
}

#[test]
fn profiling_budget_matches_paper_claim() {
    // Full-grid profiling of one model family stays under 4 minutes of
    // simulated time.
    let mut profiler = Profiler::new(ClusterSpec::h100(1), ProfileConfig::paper(), 5);
    for size in ["7b", "70b"] {
        let db = profiler.profile(&ModelSpec::by_size(size).unwrap());
        assert!(
            db.profiling_secs() < 240.0,
            "{size} profiling took {}",
            db.profiling_secs()
        );
    }
}

#[test]
fn oom_plans_are_rejected_by_the_engine() {
    let exp = experiment(1, 512);
    let cluster = ClusterSpec::h100(1);
    let graph = exp.graph().clone();
    // Pure DP: full optimizer state on every GPU.
    let a = CallAssignment::new(
        DeviceMesh::full(&cluster),
        ParallelStrategy::new(8, 1, 1, 1).unwrap(),
    )
    .unwrap();
    let plan = ExecutionPlan::new(&graph, &cluster, vec![a; graph.n_calls()]).unwrap();
    let err = exp.run(&plan, 1).unwrap_err();
    assert!(matches!(err, RunError::OutOfMemory { .. }));
}
